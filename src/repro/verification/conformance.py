"""Unbounded-delay conformance checking.

The circuit is composed with the environment described by its STG
specification.  Under the unbounded (speed-independent) delay model every
excited gate may switch at any time; every input may change whenever the
specification allows it.  A *failure* is recorded when the circuit switches
an interface output at a moment the specification does not allow, or when a
gate output glitches (is excited and then disabled without firing -- a
hazard).

Failures do not necessarily mean the silicon is broken: as Section 5 of the
paper puts it, the errors may be due to orderings that physical delays
already guarantee.  :func:`extract_rt_requirements` turns each failure into
candidate relative-timing requirements that would rule it out; the
RT-enhanced verifier (:mod:`repro.verification.rt_verify`) then re-checks
the circuit under those requirements.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import GateInstance, Netlist
from repro.core.assumptions import RelativeTimingConstraint
from repro.petrinet.net import Marking
from repro.petrinet.reachability import ReachabilityGraph
from repro.stg.model import (
    Direction,
    SignalKind,
    SignalTransition,
    SignalTransitionGraph,
)


@dataclass(frozen=True)
class Failure:
    """A conformance failure found during exploration."""

    kind: str  # "unexpected_output" or "hazard"
    event: SignalTransition
    net_values: Tuple[Tuple[str, int], ...]
    spec_enabled: Tuple[str, ...]
    concurrent_events: Tuple[str, ...]

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.event} fired while the specification only "
            f"allows {list(self.spec_enabled)}"
        )


@dataclass
class ConformanceResult:
    """Outcome of a conformance check."""

    conforms: bool
    failures: List[Failure] = field(default_factory=list)
    states_explored: int = 0
    deadlocks: int = 0

    def describe(self) -> str:
        status = "conforms" if self.conforms else "FAILS"
        lines = [
            f"circuit {status} to its specification "
            f"({self.states_explored} composed states explored)"
        ]
        for failure in self.failures[:10]:
            lines.append(f"  {failure.describe()}")
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more failures")
        return "\n".join(lines)


_CircuitState = Tuple[Tuple[str, int], ...]
_ComposedState = Tuple[_CircuitState, Marking]


def _net_values(values: Dict[str, int]) -> _CircuitState:
    return tuple(sorted(values.items()))


def _excited_gates(netlist: Netlist, values: Dict[str, int]) -> List[Tuple[GateInstance, int]]:
    """Gates whose computed output differs from the current net value."""
    excited = []
    for gate in netlist.gates:
        inputs = [values[n] for n in gate.inputs]
        new_value = gate.gate_type.evaluate(inputs, values[gate.output])
        if new_value != values[gate.output]:
            excited.append((gate, new_value))
    return excited


_SpecEntry = Tuple[str, Optional[SignalTransition], Marking]


class _SpecIndex:
    """Per-marking memo of the specification net's enabled transitions.

    The composed exploration queries the specification at every state --
    which inputs may fire, whether an output edge matches an enabled
    transition, what the successor marking is -- and distinct circuit
    states share spec markings heavily, so each distinct marking is
    resolved against the net exactly once.  Entries preserve the order of
    ``net.enabled_transitions`` (the differential suite pins the whole
    exploration bit-identical to the unindexed code).

    When a prebuilt reachability graph of the spec net is supplied, its
    edges seed the memo.  It must be a **full** graph: a partial-order
    reduced graph omits enabled transitions per marking, which would
    silently turn allowed circuit outputs into conformance failures --
    :meth:`~repro.petrinet.reachability.ReachabilityGraph.require_full`
    enforces the distinction (deadlock-style queries are where reduced
    graphs belong; see ``docs/reachability.md``).
    """

    def __init__(
        self,
        stg: SignalTransitionGraph,
        spec_graph: Optional[ReachabilityGraph] = None,
    ) -> None:
        self._stg = stg
        self._net = stg.net
        self._cache: Dict[Marking, List[_SpecEntry]] = {}
        if spec_graph is not None:
            if spec_graph.net is not stg.net:
                raise ValueError(
                    "spec_graph was built for a different net than the STG's"
                )
            spec_graph.require_full("verify_conformance")
            label_of = stg.label_of
            for marking in spec_graph.markings:
                self._cache[marking] = [
                    (transition, label_of(transition), successor)
                    for transition, successor in spec_graph.successors(marking)
                ]

    def entries(self, marking: Marking) -> List[_SpecEntry]:
        """``(transition, label, successor)`` per enabled spec transition."""
        cached = self._cache.get(marking)
        if cached is None:
            net = self._net
            label_of = self._stg.label_of
            cached = [
                (transition, label_of(transition), net.fire(transition, marking))
                for transition in net.enabled_transitions(marking)
            ]
            self._cache[marking] = cached
        return cached

    def enabled_inputs(self, marking: Marking) -> List[_SpecEntry]:
        """Input (or silent) transitions the specification may fire."""
        kind_of = self._stg.signal_kind
        return [
            entry
            for entry in self.entries(marking)
            if entry[1] is None or kind_of(entry[1].signal) is SignalKind.INPUT
        ]

    def transition_for(
        self, marking: Marking, signal: str, direction: Direction
    ) -> Optional[_SpecEntry]:
        """The first enabled spec transition matching a signal change."""
        for entry in self.entries(marking):
            label = entry[1]
            if label is not None and label.signal == signal and label.direction is direction:
                return entry
        return None

    def enabled_labels(self, marking: Marking) -> Tuple[str, ...]:
        """Labelled enabled transitions, for failure reports."""
        return tuple(
            str(label) for _t, label, _s in self.entries(marking) if label is not None
        )


def verify_conformance(
    netlist: Netlist,
    stg: SignalTransitionGraph,
    max_states: int = 200_000,
    check_hazards: bool = True,
    allowed_orderings: Optional[Sequence[Tuple[SignalTransition, SignalTransition]]] = None,
    spec_graph: Optional[ReachabilityGraph] = None,
) -> ConformanceResult:
    """Check a circuit against its STG under unbounded gate delays.

    ``allowed_orderings`` is used by the RT-enhanced verifier: each entry
    ``(before, after)`` removes interleavings where ``after`` fires while
    ``before`` is still pending, both in the circuit and in the environment.

    ``spec_graph`` optionally supplies a prebuilt **full** reachability
    graph of the specification net (typically the cached
    ``reachability-full`` analysis pass), seeding the per-marking spec
    index so repeated verifications against one spec share the state
    enumeration.  Reduced graphs are rejected -- the exploration itself
    must see every spec-enabled transition to judge circuit outputs.
    """
    stg_signals = set(stg.signals)
    interface_outputs = set(stg.outputs) | set(stg.internals)
    orderings = [(str(b), str(a)) for b, a in (allowed_orderings or [])]
    spec = _SpecIndex(stg, spec_graph)

    initial_values = {net: netlist.initial_value(net) for net in netlist.nets}
    for signal in stg.signals:
        if signal in initial_values:
            initial_values[signal] = stg.initial_value(signal)
    initial: _ComposedState = (_net_values(initial_values), stg.net.initial_marking)

    seen: Set[_ComposedState] = {initial}
    queue = deque([initial])
    failures: List[Failure] = []
    failure_keys: Set[Tuple[str, str]] = set()
    deadlocks = 0
    result = ConformanceResult(conforms=True)

    while queue:
        circuit_state, marking = queue.popleft()
        values = dict(circuit_state)

        # Candidate moves: excited gates and specification-enabled inputs.
        moves: List[Tuple[str, object]] = []
        excited = _excited_gates(netlist, values)
        for gate, new_value in excited:
            moves.append(("gate", (gate, new_value)))
        spec_inputs = spec.enabled_inputs(marking)
        for transition, label, successor_marking in spec_inputs:
            moves.append(("input", (transition, label, successor_marking)))

        # Pending events (for RT pruning and requirement extraction): every
        # excited gate output -- interface or internal -- plus enabled spec
        # inputs, expressed as signal transitions.
        pending: Dict[str, bool] = {}
        for gate, new_value in excited:
            direction = Direction.RISE if new_value == 1 else Direction.FALL
            pending[f"{gate.output}{direction.value}"] = True
        for _transition, label, _successor in spec_inputs:
            if label is not None:
                pending[label.base_name()] = True

        def blocked(event_name: Optional[str]) -> bool:
            if event_name is None:
                return False
            for before, after in orderings:
                if after == event_name and before in pending and before != event_name:
                    return True
            return False

        if not moves:
            deadlocks += 1
            continue

        for kind, payload in moves:
            if kind == "gate":
                gate, new_value = payload
                direction = Direction.RISE if new_value == 1 else Direction.FALL
                event_name = f"{gate.output}{direction.value}"
                if blocked(event_name):
                    continue
                new_values = dict(values)
                new_values[gate.output] = new_value
                new_marking = marking
                if gate.output in interface_outputs:
                    spec_entry = spec.transition_for(marking, gate.output, direction)
                    if spec_entry is None:
                        event = SignalTransition(gate.output, direction)
                        key = ("unexpected_output", str(event) + "|" + ",".join(sorted(pending)))
                        if key not in failure_keys:
                            failure_keys.add(key)
                            failures.append(
                                Failure(
                                    kind="unexpected_output",
                                    event=event,
                                    net_values=circuit_state,
                                    spec_enabled=spec.enabled_labels(marking),
                                    concurrent_events=tuple(sorted(pending)),
                                )
                            )
                        continue
                    new_marking = spec_entry[2]
                successor = (_net_values(new_values), new_marking)
            else:
                transition, label, successor_marking = payload
                if label is None:
                    successor = (circuit_state, successor_marking)
                else:
                    if blocked(label.base_name()):
                        continue
                    new_values = dict(values)
                    if label.signal in new_values:
                        new_values[label.signal] = 1 if label.is_rising else 0
                    successor = (_net_values(new_values), successor_marking)

            if successor not in seen:
                if len(seen) >= max_states:
                    raise RuntimeError(
                        f"conformance exploration exceeded {max_states} states"
                    )
                seen.add(successor)
                queue.append(successor)

        # Hazard check: a gate excited here must not be disabled by any single
        # other move without having fired (semi-modularity).
        if check_hazards:
            for gate, new_value in excited:
                if gate.output not in interface_outputs:
                    continue
                hazard_direction = Direction.RISE if new_value == 1 else Direction.FALL
                if blocked(f"{gate.output}{hazard_direction.value}"):
                    # A relative-timing constraint keeps this gate from firing
                    # before it is disabled again, so the glitch cannot occur.
                    continue
                for kind, payload in moves:
                    if kind == "gate":
                        other, other_value = payload
                        if other.name == gate.name:
                            continue
                        trial = dict(values)
                        trial[other.output] = other_value
                    else:
                        _transition, label, _successor = payload
                        if label is None or label.signal not in values:
                            continue
                        trial = dict(values)
                        trial[label.signal] = 1 if label.is_rising else 0
                    inputs = [trial[n] for n in gate.inputs]
                    still = gate.gate_type.evaluate(inputs, trial[gate.output])
                    if still == trial[gate.output]:
                        direction = Direction.RISE if new_value == 1 else Direction.FALL
                        event = SignalTransition(gate.output, direction)
                        key = ("hazard", str(event))
                        if key not in failure_keys:
                            failure_keys.add(key)
                            failures.append(
                                Failure(
                                    kind="hazard",
                                    event=event,
                                    net_values=circuit_state,
                                    spec_enabled=spec.enabled_labels(marking),
                                    concurrent_events=tuple(sorted(pending)),
                                )
                            )

    result.failures = failures
    result.conforms = not failures
    result.states_explored = len(seen)
    result.deadlocks = deadlocks
    return result


def extract_rt_requirements(
    result: ConformanceResult,
) -> List[RelativeTimingConstraint]:
    """Turn conformance failures into candidate relative-timing requirements.

    For every failure, each event that was concurrently pending becomes a
    candidate ordering "pending event before failing event": if the physical
    circuit guarantees any of those orderings, the erroneous firing cannot
    happen.  The candidates are exactly what the designer (or the separation
    analysis) must then confirm.
    """
    requirements: List[RelativeTimingConstraint] = []
    seen: Set[Tuple[str, str]] = set()
    for failure in result.failures:
        after = failure.event
        for pending in failure.concurrent_events:
            if pending == str(after) or pending == after.base_name():
                continue
            key = (pending, after.base_name())
            if key in seen:
                continue
            seen.add(key)
            requirements.append(
                RelativeTimingConstraint(
                    before=SignalTransition.parse(pending),
                    after=SignalTransition(after.signal, after.direction),
                    rationale=f"rules out {failure.kind} of {after}",
                    disjunction_group=f"failure:{failure.kind}:{after}",
                )
            )
    return requirements


@dataclass(frozen=True)
class LintCrossCheck:
    """How the static hazard lint relates to one dynamic conformance run.

    ``covered`` are hazard-failure signals the lint anchored a
    diagnostic on; ``uncovered`` are dynamic hazards the lint has no
    local explanation for (a fork- or ordering-induced hazard rather
    than a non-monotone gate); ``unconfirmed`` are lint warnings whose
    net produced no dynamic hazard under *this* specification --
    statically suspect shapes the explored environment never tickled,
    not false positives.
    """

    covered: Tuple[str, ...]
    uncovered: Tuple[str, ...]
    unconfirmed: Tuple[str, ...]

    @property
    def consistent(self) -> bool:
        """True when every dynamic hazard sits on a linted net."""
        return not self.uncovered


def lint_cross_check(result: ConformanceResult, report) -> LintCrossCheck:
    """Cross-check dynamic hazards against the static hazard lint.

    ``report`` is a :class:`repro.analysis.hazards.HazardLintReport`
    (accepted duck-typed to keep this module free of an analysis-layer
    import).  Both layers anchor on the same net: the lint keys
    excitation diagnostics by the gate's output net, and the dynamic
    checker's hazard :class:`Failure` records the disabled gate's
    output transition -- so ``failure.event.signal`` and
    ``diagnostic.net`` are directly comparable.  Fork diagnostics are
    advisory (isochronicity is an assumption, not a malfunction) and
    only count toward coverage, never toward ``unconfirmed``.
    """
    lint_nets = {diagnostic.net for diagnostic in report.diagnostics}
    warning_nets = {
        diagnostic.net
        for diagnostic in report.diagnostics
        if diagnostic.severity == "warning"
    }
    hazard_signals = tuple(
        dict.fromkeys(
            failure.event.signal
            for failure in result.failures
            if failure.kind == "hazard"
        )
    )
    covered = tuple(s for s in hazard_signals if s in lint_nets)
    uncovered = tuple(s for s in hazard_signals if s not in lint_nets)
    unconfirmed = tuple(
        sorted(warning_nets.difference(hazard_signals))
    )
    return LintCrossCheck(
        covered=covered, uncovered=uncovered, unconfirmed=unconfirmed
    )
