"""Separation analysis of path constraints.

Once a relative-timing requirement has been converted into a pair of paths
(:mod:`repro.verification.paths`), the physical question is whether the
fast path's *maximum* delay is smaller than the slow path's *minimum* delay,
with an adequate race margin.  On silicon this is answered with SPICE or a
static timing engine; here the gate library's nominal delays with a
plus/minus tolerance play that role.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.circuit.netlist import Netlist
from repro.verification.paths import PathConstraint


@dataclass
class SeparationReport:
    """Result of checking one path constraint against delay bounds."""

    constraint: PathConstraint
    fast_max_ps: float
    slow_min_ps: float
    margin_ps: float
    environment_delay_ps: float = 0.0

    @property
    def satisfied(self) -> bool:
        """True when the fast path beats the slow path by the margin."""
        return self.fast_max_ps + self.margin_ps <= self.slow_min_ps

    @property
    def slack_ps(self) -> float:
        return self.slow_min_ps - self.fast_max_ps - self.margin_ps

    def describe(self) -> str:
        verdict = "MET" if self.satisfied else "VIOLATED"
        return (
            f"{verdict}: fast path max {self.fast_max_ps:.0f} ps + margin "
            f"{self.margin_ps:.0f} ps vs slow path min {self.slow_min_ps:.0f} ps "
            f"(slack {self.slack_ps:+.0f} ps)"
        )


def _path_delay(
    netlist: Netlist,
    path: Sequence[str],
    scale: float,
    extra_per_stage_ps: float = 0.0,
) -> float:
    """Sum of driving-gate delays along a net path (source excluded)."""
    total = 0.0
    for net in path[1:]:
        driver = netlist.driver_of(net)
        if driver is not None:
            total += driver.gate_type.delay_ps * scale
        total += extra_per_stage_ps
    return total


def check_path_constraint(
    netlist: Netlist,
    constraint: PathConstraint,
    delay_tolerance: float = 0.25,
    margin_ps: float = 20.0,
    environment_delay_ps: float = 200.0,
) -> SeparationReport:
    """Check a path constraint using bounded gate delays.

    ``delay_tolerance`` expands/contracts nominal gate delays to model
    process variation; ``margin_ps`` is the race margin the sizing tool must
    preserve.  When an event sits on a primary input (environment-driven),
    ``environment_delay_ps`` is used as that side's minimum response time,
    matching the paper's observation that constraints such as "x before ri"
    require the circuit to be faster than the environment round trip.
    """
    fast_scale = 1.0 + delay_tolerance
    slow_scale = 1.0 - delay_tolerance

    fast_path = constraint.fast_path
    slow_path = constraint.slow_path

    fast_max = _path_delay(netlist, fast_path, fast_scale) if fast_path else 0.0
    slow_min = _path_delay(netlist, slow_path, slow_scale) if slow_path else 0.0

    # Environment-driven events: add the environment's response time to the
    # slow side (the input arrives no earlier than that), and nothing to the
    # fast side (conservative).
    after_net = constraint.requirement.after.signal
    if after_net in netlist.primary_inputs:
        slow_min += environment_delay_ps
    before_net = constraint.requirement.before.signal
    if before_net in netlist.primary_inputs and not fast_path:
        fast_max += environment_delay_ps

    return SeparationReport(
        constraint=constraint,
        fast_max_ps=fast_max,
        slow_min_ps=slow_min,
        margin_ps=margin_ps,
        environment_delay_ps=environment_delay_ps,
    )


def check_all_constraints(
    netlist: Netlist,
    constraints: Sequence[PathConstraint],
    delay_tolerance: float = 0.25,
    margin_ps: float = 20.0,
    environment_delay_ps: float = 200.0,
) -> List[SeparationReport]:
    """Run separation analysis for every path constraint."""
    return [
        check_path_constraint(
            netlist,
            constraint,
            delay_tolerance=delay_tolerance,
            margin_ps=margin_ps,
            environment_delay_ps=environment_delay_ps,
        )
        for constraint in constraints
    ]
