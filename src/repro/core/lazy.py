"""Lazy state graphs: concurrency reduction and early enabling.

Relative timing optimizes circuits through two mechanisms (Section 3 of the
paper):

1. **Concurrency reduction.**  An assumption ``a before b`` removes, from
   every state in which both events are enabled, the interleaving that fires
   ``b`` first.  States that become unreachable enlarge the don't-care set
   for *all* signals.

2. **Early (lazy) enabling.**  A signal may be allowed to become enabled in
   states where the untimed specification keeps it stable, provided the
   other transitions enabled in those states are faster (so the lazy signal
   never actually wins the race).  This adds *local* don't cares that differ
   from signal to signal.

Both are represented by :class:`LazyStateGraph`, which wraps the reduced
state graph, per-signal local don't-care codes, and a record of which
assumption produced each change (used later by back-annotation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.assumptions import (
    AssumptionSet,
    RelativeTimingAssumption,
)
from repro.stg.model import Direction, SignalTransition
from repro.stategraph.graph import State, StateGraph


@dataclass
class RemovedEdge:
    """An interleaving removed by concurrency reduction."""

    state: State
    transition: str
    event: SignalTransition
    assumption: RelativeTimingAssumption


@dataclass
class EarlyEnabling:
    """A local don't-care added for a lazy signal in a specific state."""

    state: State
    signal: str
    direction: Direction
    trigger: SignalTransition
    assumption: RelativeTimingAssumption


@dataclass
class LazyStateGraph:
    """The result of applying relative-timing assumptions to a state graph."""

    original: StateGraph
    reduced: StateGraph
    assumptions: AssumptionSet
    removed_edges: List[RemovedEdge] = field(default_factory=list)
    early_enablings: List[EarlyEnabling] = field(default_factory=list)

    @property
    def removed_states(self) -> Set[State]:
        """States reachable in the original graph but not in the reduced one."""
        return set(self.original.states) - set(self.reduced.states)

    def local_dont_cares(self, signal: str) -> Set[Tuple[int, ...]]:
        """Codes that are local don't cares for ``signal`` due to early enabling."""
        return {
            enabling.state.code
            for enabling in self.early_enablings
            if enabling.signal == signal
        }

    def global_dont_care_codes(self) -> Set[Tuple[int, ...]]:
        """Codes only reachable in the original (untimed) graph.

        A code is a *global* don't care only if no surviving state uses it.
        """
        surviving = {state.code for state in self.reduced.states}
        removed = {state.code for state in self.removed_states}
        return removed - surviving

    def statistics(self) -> Dict[str, int]:
        return {
            "original_states": len(self.original.states),
            "reduced_states": len(self.reduced.states),
            "removed_edges": len(self.removed_edges),
            "early_enablings": len(self.early_enablings),
        }


def _event_of(graph: StateGraph, transition: str) -> Optional[SignalTransition]:
    label = graph.stg.label_of(transition)
    if label is None:
        return None
    return SignalTransition(label.signal, label.direction)


def apply_assumptions(
    graph: StateGraph,
    assumptions: AssumptionSet,
    enable_lazy: bool = True,
) -> LazyStateGraph:
    """Apply relative timing assumptions to ``graph``.

    Concurrency reduction is applied for every assumption whose two events
    can be simultaneously enabled.  Early enabling is derived for non-input
    signals whose excitation is triggered by the ``before`` event of an
    assumption: in the state immediately preceding that trigger the signal
    becomes a local don't care.
    """
    orderings = {
        (a.before, a.after): a for a in assumptions
    }

    # --- concurrency reduction -------------------------------------------------
    removed: List[RemovedEdge] = []
    removed_keys: Set[Tuple[State, str]] = set()
    for state in graph.states:
        enabled = graph.successors(state)
        events = {}
        for transition, _target in enabled:
            event = _event_of(graph, transition)
            if event is not None:
                events.setdefault(event, []).append(transition)
        for (before, after), assumption in orderings.items():
            if before in events and after in events:
                # ``after`` must not fire while ``before`` is still pending.
                for transition in events[after]:
                    key = (state, transition)
                    if key not in removed_keys:
                        removed_keys.add(key)
                        removed.append(
                            RemovedEdge(state, transition, after, assumption)
                        )

    reduced = graph.copy_without_edges(removed_keys)
    # Keep only the removed-edge records whose source state survived; edges
    # from states that became unreachable are irrelevant.
    surviving_states = set(reduced.states)
    removed = [r for r in removed if r.state in surviving_states]

    lazy = LazyStateGraph(
        original=graph,
        reduced=reduced,
        assumptions=assumptions,
        removed_edges=removed,
    )

    if enable_lazy:
        lazy.early_enablings = _derive_early_enablings(reduced, assumptions)
    return lazy


def _derive_early_enablings(
    graph: StateGraph, assumptions: AssumptionSet
) -> List[EarlyEnabling]:
    """Find states where a non-input signal may be enabled early.

    For an assumption ``t before s_dir`` where ``s`` is a non-input signal:
    in any state where ``t`` is enabled and ``s`` is *not yet* excited but
    becomes excited (towards ``dir``) after ``t`` fires, the logic of ``s``
    may already switch in that state -- the race is won by ``t`` by
    assumption.  The state becomes a local don't care for ``s``.
    """
    stg = graph.stg
    non_inputs = set(stg.non_input_signals)
    enablings: List[EarlyEnabling] = []
    for assumption in assumptions:
        before, after = assumption.before, assumption.after
        if after.signal not in non_inputs:
            continue
        for state in graph.states:
            if graph.is_excited(state, after.signal) is not None:
                continue  # already excited; nothing to anticipate
            for transition, target in graph.successors(state):
                event = _event_of(graph, transition)
                if event != before:
                    continue
                if graph.is_excited(target, after.signal) is after.direction:
                    enablings.append(
                        EarlyEnabling(
                            state=state,
                            signal=after.signal,
                            direction=after.direction,
                            trigger=before,
                            assumption=assumption,
                        )
                    )
    return enablings


def early_enable_candidates(graph: StateGraph) -> List[Tuple[SignalTransition, SignalTransition]]:
    """Orderings that would unlock early enabling of non-input signals.

    For every non-input signal transition ``s_dir`` triggered by an event
    ``t`` (i.e. ``t`` is the last event making ``s`` excited), the ordering
    ``t before s_dir`` is a candidate assumption.  The automatic generator
    filters these by its delay-model rules.
    """
    stg = graph.stg
    non_inputs = set(stg.non_input_signals)
    candidates: Set[Tuple[SignalTransition, SignalTransition]] = set()
    for state in graph.states:
        for transition, target in graph.successors(state):
            trigger = _event_of(graph, transition)
            if trigger is None:
                continue
            for signal in non_inputs:
                if trigger.signal == signal:
                    continue
                before_excited = graph.is_excited(state, signal)
                after_excited = graph.is_excited(target, signal)
                if before_excited is None and after_excited is not None:
                    lazy_event = SignalTransition(signal, after_excited)
                    candidates.add((trigger, lazy_event))
    return sorted(candidates, key=lambda pair: (str(pair[0]), str(pair[1])))
