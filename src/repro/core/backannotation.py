"""Back-annotation of required relative timing constraints.

Synthesis may or may not exploit each assumption it was given.  The subset
it relies upon must be carried forward as *constraints*: orderings that must
be guaranteed by the physical design (through sizing or verification).

The implementation uses a leave-one-out analysis, which covers both
mechanisms (concurrency reduction and early enabling) uniformly: an
assumption is *required* if, after dropping it, the synthesized covers no
longer implement the correct next-state value in some state that dropping
the assumption makes reachable (or un-lazy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.boolean.cubes import Cover
from repro.core.assumptions import (
    AssumptionSet,
    RelativeTimingAssumption,
    RelativeTimingConstraint,
)
from repro.core.lazy import apply_assumptions
from repro.stategraph.graph import StateGraph


@dataclass
class BackAnnotation:
    """Result of the back-annotation step."""

    constraints: List[RelativeTimingConstraint] = field(default_factory=list)
    used_assumptions: List[RelativeTimingAssumption] = field(default_factory=list)
    unused_assumptions: List[RelativeTimingAssumption] = field(default_factory=list)
    violations_without: Dict[str, List[str]] = field(default_factory=dict)

    def describe(self) -> str:
        lines = ["Required relative timing constraints:"]
        if not self.constraints:
            lines.append("  (none -- the circuit is untimed-correct)")
        for constraint in self.constraints:
            lines.append(f"  {constraint}")
        if self.unused_assumptions:
            lines.append("Assumptions not needed by the implementation:")
            for assumption in self.unused_assumptions:
                lines.append(f"  {assumption}")
        return "\n".join(lines)


def _covers_implement_graph(
    covers: Mapping[str, Cover],
    graph: StateGraph,
    lazy_dont_cares: Optional[Mapping[str, Set[Tuple[int, ...]]]] = None,
) -> List[str]:
    """Check the covers against every state of ``graph``.

    Returns human-readable mismatch descriptions.  ``lazy_dont_cares`` maps a
    signal to codes where any value is acceptable (used when validating
    against a lazy graph).
    """
    mismatches: List[str] = []
    lazy_dont_cares = lazy_dont_cares or {}
    for signal, cover in covers.items():
        dc_codes = lazy_dont_cares.get(signal, set())
        for state in graph.states:
            if state.code in dc_codes:
                continue
            required = graph.next_value(state, signal)
            actual = int(cover.evaluate(state.code))
            if actual != required:
                mismatches.append(
                    f"{signal}: cover={actual}, spec={required} at code "
                    f"{graph.code_string(state)}"
                )
    return mismatches


def back_annotate(
    original_graph: StateGraph,
    assumptions: AssumptionSet,
    covers: Mapping[str, Cover],
) -> BackAnnotation:
    """Determine which assumptions the synthesized covers depend on.

    Parameters
    ----------
    original_graph:
        The *untimed* state graph (after CSC resolution, before any
        relative-timing reduction).
    assumptions:
        The full assumption set handed to synthesis.
    covers:
        The synthesized per-signal covers (over ``original_graph.signal_order``).
    """
    annotation = BackAnnotation()

    for assumption in assumptions:
        remaining = AssumptionSet(a for a in assumptions if a is not assumption)
        lazy_without = apply_assumptions(original_graph, remaining)
        dont_cares = {
            signal: lazy_without.local_dont_cares(signal) for signal in covers
        }
        mismatches = _covers_implement_graph(
            covers, lazy_without.reduced, dont_cares
        )
        if mismatches:
            annotation.used_assumptions.append(assumption)
            annotation.violations_without[str(assumption)] = mismatches
            annotation.constraints.append(
                RelativeTimingConstraint(
                    before=assumption.before,
                    after=assumption.after,
                    source=assumption.kind,
                    rationale=assumption.rationale,
                )
            )
        else:
            annotation.unused_assumptions.append(assumption)

    _ensure_sufficiency(original_graph, covers, annotation)
    _mark_disjunctions(annotation)
    return annotation


def _ensure_sufficiency(
    original_graph: StateGraph,
    covers: Mapping[str, Cover],
    annotation: BackAnnotation,
) -> None:
    """Make the constraint set *sufficient*, not just individually necessary.

    Leave-one-out misses "at least one of a group" requirements: when two
    assumptions are interchangeable (the paper's dependent ``lo+ before x-``
    / ``ro+ before x-`` pair), removing either alone is harmless so both look
    unused, yet removing both breaks the circuit.  This pass greedily adds
    back unused assumptions until the covers are correct under the selected
    set alone.
    """
    def correct_under(selected: Sequence[RelativeTimingAssumption]) -> List[str]:
        lazy = apply_assumptions(original_graph, AssumptionSet(selected))
        dont_cares = {signal: lazy.local_dont_cares(signal) for signal in covers}
        return _covers_implement_graph(covers, lazy.reduced, dont_cares)

    selected = list(annotation.used_assumptions)
    pending = list(annotation.unused_assumptions)
    mismatches = correct_under(selected)
    while mismatches and pending:
        best_index = None
        best_remaining = None
        for index, candidate in enumerate(pending):
            remaining = correct_under(selected + [candidate])
            if best_remaining is None or len(remaining) < len(best_remaining):
                best_index = index
                best_remaining = remaining
        if best_index is None or best_remaining is None:
            break
        if len(best_remaining) >= len(mismatches):
            # No candidate helps; stop rather than loop forever.
            break
        chosen = pending.pop(best_index)
        selected.append(chosen)
        annotation.used_assumptions.append(chosen)
        annotation.unused_assumptions.remove(chosen)
        annotation.constraints.append(
            RelativeTimingConstraint(
                before=chosen.before,
                after=chosen.after,
                source=chosen.kind,
                rationale=chosen.rationale,
            )
        )
        mismatches = best_remaining


def _mark_disjunctions(annotation: BackAnnotation) -> None:
    """Group constraints that share the same ``after`` event.

    When several constraints delay the same lazy event, their triggers are
    typically alternative causes (the paper's ``lo+ before x-`` / ``ro+
    before x-`` pair, where the implementation of ``x`` guarantees that one
    of the two always holds).  Such constraints are tagged with a common
    disjunction group so downstream verification can treat them jointly.
    """
    by_after: Dict[str, List[int]] = {}
    for index, constraint in enumerate(annotation.constraints):
        by_after.setdefault(str(constraint.after), []).append(index)
    updated: List[RelativeTimingConstraint] = list(annotation.constraints)
    for after_event, indices in by_after.items():
        if len(indices) < 2:
            continue
        for index in indices:
            constraint = updated[index]
            updated[index] = RelativeTimingConstraint(
                before=constraint.before,
                after=constraint.after,
                source=constraint.source,
                rationale=constraint.rationale,
                disjunction_group=after_event,
            )
    annotation.constraints = updated
