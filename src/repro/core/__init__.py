"""Relative Timing: the paper's primary contribution.

Relative timing expresses timing knowledge as *orderings between signal
transitions* ("event a occurs before event b") rather than absolute delays.
This package provides:

* :mod:`repro.core.assumptions` -- assumption and constraint objects, with
  user/automatic provenance.
* :mod:`repro.core.lazy` -- the lazy state graph: concurrency reduction
  under assumptions and early (lazy) enabling of non-critical signals,
  which together enlarge the don't-care space available to logic synthesis.
* :mod:`repro.core.generation` -- automatic generation of assumptions from
  an untimed speed-independent specification using simple delay-model rules
  ("one gate can be made faster than two").
* :mod:`repro.core.backannotation` -- identification of the assumption
  subset actually exploited by synthesis; those become the *required*
  relative-timing constraints that the implementation must meet.
"""

from repro.core.assumptions import (
    AssumptionKind,
    AssumptionSet,
    RelativeTimingAssumption,
    RelativeTimingConstraint,
    assume,
)
from repro.core.lazy import LazyStateGraph, apply_assumptions, early_enable_candidates
from repro.core.generation import generate_automatic_assumptions
from repro.core.backannotation import BackAnnotation, back_annotate

__all__ = [
    "AssumptionKind",
    "AssumptionSet",
    "RelativeTimingAssumption",
    "RelativeTimingConstraint",
    "assume",
    "LazyStateGraph",
    "apply_assumptions",
    "early_enable_candidates",
    "generate_automatic_assumptions",
    "BackAnnotation",
    "back_annotate",
]
