"""Relative timing assumptions and constraints.

An *assumption* is an ordering between two signal transitions that the
designer or the automatic generator believes will hold in the physical
circuit: ``before`` happens before ``after`` whenever both are pending.
Assumptions are used freely during optimization.  The subset of assumptions
that the synthesized logic actually relies upon is back-annotated as
*constraints* -- orderings that must be verified (or enforced by sizing) for
the circuit to be correct.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.stg.model import SignalTransition


class AssumptionKind(enum.Enum):
    """Provenance of a relative timing assumption."""

    USER = "user"
    AUTOMATIC = "automatic"


EventLike = Union[str, SignalTransition]


def _as_event(event: EventLike) -> SignalTransition:
    if isinstance(event, SignalTransition):
        # Normalise away occurrence indices: orderings are between transition
        # *types*, not individual occurrences.
        return SignalTransition(event.signal, event.direction)
    return SignalTransition.parse(event)


@dataclass(frozen=True)
class RelativeTimingAssumption:
    """``before`` occurs before ``after`` whenever both are pending."""

    before: SignalTransition
    after: SignalTransition
    kind: AssumptionKind = AssumptionKind.AUTOMATIC
    rationale: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "before", _as_event(self.before))
        object.__setattr__(self, "after", _as_event(self.after))

    def __str__(self) -> str:
        tag = "user" if self.kind is AssumptionKind.USER else "auto"
        return f"{self.before} before {self.after} [{tag}]"

    def ordering(self) -> Tuple[SignalTransition, SignalTransition]:
        return (self.before, self.after)


@dataclass(frozen=True)
class RelativeTimingConstraint:
    """A back-annotated ordering that the implementation must guarantee."""

    before: SignalTransition
    after: SignalTransition
    source: AssumptionKind = AssumptionKind.AUTOMATIC
    rationale: str = ""
    disjunction_group: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "before", _as_event(self.before))
        object.__setattr__(self, "after", _as_event(self.after))

    def __str__(self) -> str:
        text = f"{self.before} before {self.after}"
        if self.disjunction_group:
            text += f" (one-of group {self.disjunction_group})"
        return text


def assume(
    before: EventLike,
    after: EventLike,
    kind: AssumptionKind = AssumptionKind.USER,
    rationale: str = "",
) -> RelativeTimingAssumption:
    """Convenience constructor: ``assume("ri-", "li+")``."""
    return RelativeTimingAssumption(
        before=_as_event(before), after=_as_event(after), kind=kind, rationale=rationale
    )


class AssumptionSet:
    """An ordered, de-duplicated collection of assumptions."""

    def __init__(self, assumptions: Iterable[RelativeTimingAssumption] = ()) -> None:
        self._assumptions: List[RelativeTimingAssumption] = []
        self._seen: Set[Tuple[SignalTransition, SignalTransition]] = set()
        for assumption in assumptions:
            self.add(assumption)

    def add(self, assumption: RelativeTimingAssumption) -> bool:
        """Add an assumption; returns False if an equal ordering already exists."""
        key = assumption.ordering()
        if key in self._seen:
            return False
        reverse = (key[1], key[0])
        if reverse in self._seen:
            raise ValueError(
                f"contradictory assumption: {assumption} conflicts with an "
                "existing assumption with the opposite ordering"
            )
        self._seen.add(key)
        self._assumptions.append(assumption)
        return True

    def add_user(self, before: EventLike, after: EventLike, rationale: str = "") -> bool:
        return self.add(assume(before, after, AssumptionKind.USER, rationale))

    def add_automatic(self, before: EventLike, after: EventLike, rationale: str = "") -> bool:
        return self.add(assume(before, after, AssumptionKind.AUTOMATIC, rationale))

    def __iter__(self) -> Iterator[RelativeTimingAssumption]:
        return iter(self._assumptions)

    def __len__(self) -> int:
        return len(self._assumptions)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, RelativeTimingAssumption):
            return item.ordering() in self._seen
        if isinstance(item, tuple) and len(item) == 2:
            return (_as_event(item[0]), _as_event(item[1])) in self._seen
        return False

    @property
    def user_assumptions(self) -> List[RelativeTimingAssumption]:
        return [a for a in self._assumptions if a.kind is AssumptionKind.USER]

    @property
    def automatic_assumptions(self) -> List[RelativeTimingAssumption]:
        return [a for a in self._assumptions if a.kind is AssumptionKind.AUTOMATIC]

    def orderings(self) -> List[Tuple[SignalTransition, SignalTransition]]:
        return [a.ordering() for a in self._assumptions]

    def merged_with(self, other: "AssumptionSet") -> "AssumptionSet":
        merged = AssumptionSet(self._assumptions)
        for assumption in other:
            merged.add(assumption)
        return merged

    def describe(self) -> str:
        if not self._assumptions:
            return "(no assumptions)"
        return "\n".join(str(a) for a in self._assumptions)

    def __repr__(self) -> str:
        return f"AssumptionSet({len(self._assumptions)} assumptions)"
