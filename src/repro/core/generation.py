"""Automatic generation of relative timing assumptions.

The paper: "Petrify generates all necessary assumptions automatically using
rules based on a simple delay model, e.g. one gate can be made faster than
two."  This module implements that rule set:

* **Rule A -- lazy internal signals.**  A state signal inserted by the
  encoding step is implemented with a single gate; any event that triggers
  its excitation can be assumed to precede the state-signal transition, so
  the state signal may be early enabled (its falling transitions in the
  paper's Figure 5 are exactly this case).
* **Rule B -- circuit before environment.**  When an internal signal
  transition is enabled concurrently with an input transition, the single
  gate implementing the internal signal is assumed to be faster than the
  environment's handshake round trip (the "x+ before ri+" constraint of
  Figure 5).
* **Rule C -- one gate faster than two (optional, aggressive mode).**  Among
  concurrently enabled *output* transitions, the one whose excitation logic
  is estimated shallower is assumed to fire first.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.assumptions import (
    AssumptionKind,
    AssumptionSet,
    RelativeTimingAssumption,
)
from repro.core.lazy import early_enable_candidates
from repro.stg.model import SignalTransition
from repro.stategraph.graph import StateGraph


def _estimated_depth(graph: StateGraph, signal: str) -> int:
    """Crude logic-depth proxy: number of distinct trigger signals.

    The excitation of a signal with many distinct triggers needs a wider
    (deeper, slower) gate; the automatic rules only need a monotone ordering.
    """
    triggers: Set[str] = set()
    for state in graph.states:
        if graph.is_excited(state, signal) is None:
            continue
        for _transition, source in graph.predecessors(state):
            if graph.is_excited(source, signal) is None:
                # The edge entering the excitation region identifies a trigger.
                for label in graph.enabled_labels(source):
                    if label.signal != signal:
                        triggers.add(label.signal)
    return max(1, len(triggers))


def generate_automatic_assumptions(
    graph: StateGraph,
    aggressive: bool = False,
    existing: Optional[AssumptionSet] = None,
) -> AssumptionSet:
    """Generate automatic assumptions for a state graph.

    Parameters
    ----------
    graph:
        The untimed state graph (after CSC resolution).
    aggressive:
        Also emit output-vs-output orderings (Rule C).  Off by default
        because those orderings change observable interface behaviour and the
        basic rules already capture the optimizations shown in the paper.
    existing:
        Assumptions already present (typically user assumptions); contradicting
        orderings are not generated.
    """
    stg = graph.stg
    assumptions = AssumptionSet(existing or [])
    internal = set(stg.internals)
    inputs = set(stg.inputs)
    outputs = set(stg.outputs)

    def try_add(before: SignalTransition, after: SignalTransition, rationale: str) -> None:
        if before.signal == after.signal:
            return
        candidate = RelativeTimingAssumption(
            before=before,
            after=after,
            kind=AssumptionKind.AUTOMATIC,
            rationale=rationale,
        )
        reverse = (candidate.after, candidate.before)
        if reverse in assumptions:
            return
        assumptions.add(candidate)

    # Rule A: early enabling of internal (state) signals.
    for trigger, lazy_event in early_enable_candidates(graph):
        if lazy_event.signal in internal:
            try_add(
                trigger,
                lazy_event,
                "state signal is one gate; its trigger path is at least as long",
            )
        elif aggressive and lazy_event.signal in outputs and trigger.signal not in inputs:
            try_add(
                trigger,
                lazy_event,
                "one gate can be made faster than two (aggressive)",
            )

    # Rule B: internal signal transitions precede concurrently enabled inputs.
    for state in graph.states:
        labels = graph.enabled_labels(state)
        internal_events = [l for l in labels if l.signal in internal]
        input_events = [l for l in labels if l.signal in inputs]
        for internal_event in internal_events:
            for input_event in input_events:
                try_add(
                    SignalTransition(internal_event.signal, internal_event.direction),
                    SignalTransition(input_event.signal, input_event.direction),
                    "one gate delay is faster than the environment round trip",
                )

    # Rule C (aggressive): order concurrently enabled outputs by estimated depth.
    if aggressive:
        depth = {signal: _estimated_depth(graph, signal) for signal in outputs}
        for state in graph.states:
            labels = [l for l in graph.enabled_labels(state) if l.signal in outputs]
            for first in labels:
                for second in labels:
                    if first.signal == second.signal:
                        continue
                    if depth[first.signal] < depth[second.signal]:
                        try_add(
                            SignalTransition(first.signal, first.direction),
                            SignalTransition(second.signal, second.direction),
                            "one gate can be made faster than two",
                        )
    return assumptions
