"""Static hazard lint: isochronic forks and non-monotone excitations.

The conformance checker (:mod:`repro.verification.conformance`) finds
hazards *dynamically*: it explores the circuit x specification state
space and reports every gate that is excited and then disabled without
firing.  That is exact but exponential.  This pass is the static
companion -- a lint over the compiled truth tables and the fork
structure that flags the two local shapes those dynamic hazards come
from, without exploring anything:

* **Non-monotone excitation** (``non-monotone-excitation``): a gate
  whose compiled function is non-unate in some input -- for a fixed
  value of the other inputs and of the state bit, moving that input one
  way can both excite and disable the output, depending on context.
  Such a gate can be excited and then cut off by a single further input
  change, which is exactly the semi-modularity violation the dynamic
  checker reports.  Speed-independent library cells (C-elements,
  AND/OR/majority gates) are unate in every input; a non-unate gate
  (an XOR slipped into a handshake path) is where glitches breed.
  The diagnostic is keyed by the gate's *output* net, matching
  ``Failure.event.signal`` in the conformance report so the two layers
  can be cross-checked mechanically
  (:func:`repro.verification.conformance.lint_cross_check`).

* **Isochronic fork** (``isochronic-fork``): a net fanning out to
  branches with different gate delays.  Speed-independent operation on
  a fork assumes every branch sees a transition "at the same time"; a
  delay spread across the reading gates is where that assumption is
  load-bearing.  This is advisory (severity ``"info"``): the paper's
  relative-timing flow exists precisely because such assumptions are
  often fine -- the lint marks where they live.

``OP_CALL`` gates (opaque ``eval_fn`` callables that defeated table
compilation) cannot be analysed statically and produce an
``opaque-gate`` note instead, so a clean report never silently skips a
gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.analysis.manager import AnalysisPass
from repro.engine.events import (
    OP_CALL,
    OP_CONST,
    OP_TABLE,
    OP_WIDE_XOR,
)


@dataclass(frozen=True)
class HazardDiagnostic:
    """One structured lint finding.

    ``net`` is the diagnostic's anchor: the gate output for excitation
    findings (matching the conformance checker's hazard events), the
    forking net for fork findings.
    """

    rule: str  # "non-monotone-excitation" | "isochronic-fork" | "opaque-gate"
    severity: str  # "warning" | "info"
    net: str
    gate: str
    detail: str

    def describe(self) -> str:
        return f"[{self.severity}] {self.rule} @ {self.net} ({self.gate}): {self.detail}"


@dataclass(frozen=True)
class HazardLintReport:
    """All diagnostics for one netlist, in deterministic order."""

    diagnostics: Tuple[HazardDiagnostic, ...]

    def by_rule(self, rule: str) -> Tuple[HazardDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def nets(self, rule: str = "") -> Tuple[str, ...]:
        """Anchor nets carrying diagnostics (optionally for one rule)."""
        return tuple(
            dict.fromkeys(
                d.net
                for d in self.diagnostics
                if not rule or d.rule == rule
            )
        )

    @property
    def warnings(self) -> Tuple[HazardDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")


def _non_unate_inputs(row: int, n: int) -> List[int]:
    """Input positions (gate order) in which the table is non-unate.

    The table folds ``(state << n) | bits`` with inputs MSB-first.  For
    input position ``k`` we compare every pair of indices differing only
    in that input's bit: position ``n - 1 - k`` of ``bits``.  If raising
    the input both raises the output somewhere and lowers it elsewhere,
    the gate is non-unate (binate) in that input.
    """
    culprits: List[int] = []
    for k in range(n):
        bit = 1 << (n - 1 - k)
        rises = False
        falls = False
        for idx in range(1 << (n + 1)):
            if idx & bit:
                continue
            lo = (row >> idx) & 1
            hi = (row >> (idx | bit)) & 1
            if lo < hi:
                rises = True
            elif lo > hi:
                falls = True
            if rises and falls:
                culprits.append(k)
                break
    return culprits


class HazardLintAnalysis(AnalysisPass):
    """Produce a :class:`HazardLintReport` for a ``Netlist``.

    Reads only the ``"topology"`` aspect (truth tables are a function of
    the gate types, not of initial values), so reports stay cached
    across ``set_initial_value`` mutations.
    """

    name = "hazard-lint"
    depends = ("compile", "structure")
    aspects = ("topology",)

    def run(self, subject: Any, deps: Dict[str, Any], **params: Any) -> HazardLintReport:
        compiled = deps["compile"]
        structure = deps["structure"]
        diagnostics: List[HazardDiagnostic] = []

        delay_of = {
            gate.name: gate.gate_type.delay_ps for gate in subject.gates
        }
        gate_of = {gate.name: gate for gate in subject.gates}

        for slot, gate in enumerate(compiled.gates):
            op = compiled.gate_op[slot]
            n = len(compiled.gate_inputs[slot])
            output = subject.gates[slot].output
            name = subject.gates[slot].name
            if op == OP_CALL:
                diagnostics.append(
                    HazardDiagnostic(
                        rule="opaque-gate",
                        severity="info",
                        net=output,
                        gate=name,
                        detail=(
                            "eval_fn resisted table compilation; "
                            "excitation monotonicity not statically checkable"
                        ),
                    )
                )
                continue
            if op == OP_CONST or n == 0:
                continue
            if op == OP_WIDE_XOR:
                culprits = list(range(n))
            elif op == OP_TABLE:
                culprits = _non_unate_inputs(compiled.gate_row[slot], n)
            else:  # wide AND/OR/NAND/NOR: unate in every input
                culprits = []
            if culprits:
                input_nets = subject.gates[slot].inputs
                named = ", ".join(input_nets[k] for k in culprits)
                diagnostics.append(
                    HazardDiagnostic(
                        rule="non-monotone-excitation",
                        severity="warning",
                        net=output,
                        gate=name,
                        detail=(
                            f"output is non-unate in input(s) {named}; a "
                            "single input change can disable a pending "
                            "excitation (glitch)"
                        ),
                    )
                )

        for net in structure.nets:
            readers = structure.fanout_gates.get(net, ())
            if len(readers) < 2:
                continue
            delays = sorted({delay_of[r] for r in readers if r in delay_of})
            if len(delays) > 1:
                spread = delays[-1] - delays[0]
                branches = ", ".join(
                    f"{r} ({delay_of[r]:g} ps)" for r in readers
                )
                diagnostics.append(
                    HazardDiagnostic(
                        rule="isochronic-fork",
                        severity="info",
                        net=net,
                        gate=gate_of[readers[0]].name if readers else "",
                        detail=(
                            f"fork feeds branches with a {spread:g} ps delay "
                            f"spread: {branches}; speed-independence here "
                            "rests on the isochronicity assumption"
                        ),
                    )
                )

        return HazardLintReport(diagnostics=tuple(diagnostics))
