"""Compilation artifacts as cached analyses.

``"compile"`` turns a :class:`~repro.circuit.netlist.Netlist` into its
:class:`~repro.engine.events.CompiledNetlist` through the pass manager,
so repeat campaigns (or any two content-equal netlists) share one
truth-table enumeration instead of recompiling per call site.

``"golden-signature"`` caches a fault-simulation campaign's fault-free
run -- observable finals/counts, the processed event count, and (under
jitter) the final RNG states -- keyed by the netlist fingerprints plus
the full campaign configuration, so a repeat campaign skips the golden
replay as well as the compile.

Cache-key soundness: the topology fingerprint includes ``id(eval_fn)``
per gate type.  A cached ``CompiledNetlist`` holds the gate instances
(and through them the gate types and ``eval_fn`` callables), so while an
entry lives no new callable can be allocated at a fingerprinted id --
the entry itself pins the ids it is keyed by.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.analysis.manager import AnalysisPass
from repro.engine.events import CompiledNetlist


def campaign_params(
    environment_rules,
    initial_stimuli,
    observables,
    duration_ps,
    max_events: int,
    seed: int,
    delay_jitter: float,
    environment_jitter: float,
) -> Dict[str, Any]:
    """Hashable campaign configuration, shared by the campaign-keyed analyses.

    Rules and stimuli arrive as rich objects (:class:`HandshakeRule`
    dataclasses, tuples); everything is flattened to plain tuples so two
    equal configurations key identically.
    """
    rules = tuple(
        (
            rule.trigger,
            int(bool(rule.trigger_value)),
            rule.target,
            int(bool(rule.target_value)),
            float(rule.delay_ps),
        )
        for rule in environment_rules
    )
    stimuli = tuple(
        (net, int(bool(value)), float(time))
        for net, value, time in initial_stimuli
    )
    return {
        "rules": rules,
        "stimuli": stimuli,
        "observables": None if observables is None else tuple(observables),
        "duration_ps": None if duration_ps is None else float(duration_ps),
        "max_events": int(max_events),
        "seed": int(seed),
        "delay_jitter": float(delay_jitter),
        "environment_jitter": float(environment_jitter),
    }


class CompileAnalysis(AnalysisPass):
    """``Netlist`` -> validated ``CompiledNetlist`` (both aspects)."""

    name = "compile"
    aspects = ("topology", "values")

    def run(self, subject: Any, deps: Dict[str, Any], **params: Any) -> CompiledNetlist:
        subject.validate()
        return CompiledNetlist(subject)


class GoldenSignatureAnalysis(AnalysisPass):
    """Fault-free campaign run: signature, event count, RNG states.

    Parameterised by the full campaign configuration (see
    :func:`campaign_params`).  The result dict carries exactly what
    :class:`~repro.engine.faultsim._FaultSweep` needs to skip its golden
    replay: ``finals``/``counts`` (the observable signature),
    ``events`` (the golden processed-event count, consumed by the
    event-cap shortcut), and ``rng_state`` (the final simulator /
    environment RNG pair under jitter, ``None`` otherwise).

    A golden run that raises (oscillating fault-free circuit, unknown
    rule target) is a campaign setup error: the exception propagates and
    nothing is cached, exactly like the uncached path.
    """

    name = "golden-signature"
    depends = ("compile",)
    aspects = ("topology", "values")

    def param_key(self, **params: Any) -> Tuple:
        return tuple(sorted(params.items()))

    def run(self, subject: Any, deps: Dict[str, Any], **params: Any) -> Dict[str, Any]:
        from repro.engine.faultsim import build_sweep

        sweep = build_sweep(subject, deps["compile"], params)
        finals, counts = sweep.golden_signature()
        return {
            "finals": finals,
            "counts": counts,
            "events": sweep.golden_events,
            "rng_state": sweep.golden_rng_state,
        }
