"""Static stuck-at fault collapsing.

The classic testability result behind the paper's Table 2 campaigns:
most of a stuck-at fault list need not be simulated, because many
faults are *provably equivalent* (any test detecting one detects the
other, with the same observable behaviour) and some are *provably
undetectable*.  This analysis derives both statically -- from the
compiled truth tables and the influence graph -- and the campaign entry
points then simulate one representative per class, expanding verdicts
back over the full list **bit-identically** to the uncollapsed run.

The engine's verdict model is stricter than textbook stuck-at testing:
a verdict is ``(detected, reason)`` where detection compares observable
finals *and transition counts* against the golden run, and abnormal
behaviour (event-cap oscillation errors, gate evaluations raising) is
part of the contract.  Every rule below is therefore justified at the
*trajectory* level against the reference per-fault loop, not just at
the Boolean-function level:

* **No-op overlays** (:attr:`CollapsePlan.static_same`): a fault on an
  undriven net whose pinned value equals the net's initial value leaves
  the injected netlist literally identical to the fault-free one -- the
  trajectory is the golden trajectory, so the verdict is statically
  ``(False, "no observable difference")``.  Exact even under jitter.

* **Forced-chain equivalence** (:attr:`CollapsePlan.rep_of`): fault
  ``(a, va)`` merges with ``(b, vb)`` when gate ``g`` is the *only*
  reader of ``a``, drives ``b``, and its compiled table forces ``b`` to
  ``vb`` for every state/other-input combination once ``a = va``;
  additionally ``initial(b) == vb`` (no settle transient separates the
  two injections), ``a`` is unobservable and untouched by the
  environment (no rule triggers on it, no rule or stimulus writes it),
  and ``b`` is not written by the environment or stimuli.  Under those
  conditions the two faulty trajectories agree on every net except
  ``a`` itself, and ``(b, vb)``'s event sequence is ``(a, va)``'s plus
  the events on ``a`` -- so verdicts agree whenever the representative
  completes, and the member can only be *cheaper* to run.  Classic
  input-SA-dominated-by-output-SA collapsing for AND/OR/INV shapes
  falls out of this rule (a controlling input value forces the output),
  including sibling-input merging: two controlling inputs of one gate
  both merge into the output fault and land in one class transitively.
  Representatives sit at the output end of each chain, so the
  member-event-subset argument holds class-wide; a representative that
  dies abnormally (event cap) forfeits the argument, and the campaign
  expansion re-simulates its members individually
  (:attr:`CollapsePlan.members` keeps the classes for exactly that).

* **Out-of-cone undetectability** (also ``static_same``): a fault whose
  influence closure (gate fanout edges) reaches no observable cannot
  change observable finals or counts -- but it *can* change the event
  count, and through the shared event cap the *reason* ("abnormal
  behaviour" vs "no observable difference").  The rule therefore only
  fires when the perturbed region is provably tame: closed under
  fanout, free of ``OP_CALL`` gates (no new evaluation errors), not
  triggering any environment rule, acyclic (no new oscillation), and
  with a worst-case extra-event bound that provably fits under
  ``max_events`` given the golden event count.  Handshake circuits have
  almost everything in-cone; the rule exists for the general netlists
  the analysis layer serves, and costs nothing when it cannot fire.

All structural rules are **disabled under jitter**: an extra or missing
event shifts every subsequent draw of the shared per-copy RNG streams,
so no two distinct injections are ever draw-for-draw equivalent.  The
campaign entry points only consult the plan for jitter-free campaigns
(duplicate faults still deduplicate exactly, jittered or not -- the
reference loop gives identical copies identical fresh streams).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.manager import AnalysisPass
from repro.engine.events import (
    OP_CALL,
    OP_TABLE,
    OP_WIDE_AND,
    OP_WIDE_NAND,
    OP_WIDE_NOR,
    OP_WIDE_OR,
)

Fault = Tuple[int, int]  # (net slot, stuck value)


@dataclass(frozen=True)
class CollapsePlan:
    """Static collapsing decisions for one (netlist, campaign) pair.

    All faults are ``(net slot, value)`` pairs in compiled slot space.

    Attributes
    ----------
    rep_of:
        fault -> its class representative.  Identity for faults that
        are their own representative; faults absent from the map are
        uncollapsed (simulate as-is).
    members:
        representative -> every member of its class (representative
        included), for the abnormal-representative fallback.
    static_same:
        faults statically known undetected with reason
        ``"no observable difference"`` -- never simulated at all.
    stats:
        per-rule yield counters (``chain_edges``, ``chain_merged``,
        ``static_noop``, ``static_out_of_cone``) for reporting.
    """

    rep_of: Dict[Fault, Fault]
    members: Dict[Fault, Tuple[Fault, ...]]
    static_same: FrozenSet[Fault]
    stats: Dict[str, int] = field(default_factory=dict)

    def representative(self, fault: Fault) -> Fault:
        return self.rep_of.get(fault, fault)


def _forced_output(
    op: int, row: int, inputs: Tuple[int, ...], slot: int, value: int
) -> Optional[int]:
    """Output value the gate is forced to when input ``slot`` is ``value``.

    ``None`` when the remaining inputs (or the sequential state bit) can
    still steer the output.  Tables are scanned exhaustively over the
    folded ``state << n | input bits`` index (inputs MSB-first, matching
    the kernel's convention); wide threshold gates force only on their
    controlling value.
    """
    positions = [i for i, s in enumerate(inputs) if s == slot]
    if not positions:
        return None
    n = len(inputs)
    if op == OP_TABLE:
        forced: Optional[int] = None
        for idx in range(1 << (n + 1)):
            ok = True
            for pos in positions:
                if (idx >> (n - 1 - pos)) & 1 != value:
                    ok = False
                    break
            if not ok:
                continue
            bit = (row >> idx) & 1
            if forced is None:
                forced = bit
            elif forced != bit:
                return None
        return forced
    if op == OP_WIDE_AND:
        return 0 if value == 0 else None
    if op == OP_WIDE_NAND:
        return 1 if value == 0 else None
    if op == OP_WIDE_OR:
        return 1 if value == 1 else None
    if op == OP_WIDE_NOR:
        return 0 if value == 1 else None
    return None  # OP_WIDE_XOR / OP_CALL / OP_CONST never force statically


def _chain_edges(
    compiled,
    obs_slots: Set[int],
    env_triggers: Set[int],
    written: Set[int],
) -> Dict[Fault, Fault]:
    """One forced-chain edge per eligible ``(a, va)``, pointing outputward."""
    edges: Dict[Fault, Fault] = {}
    fanout = compiled.fanout
    initial = compiled.initial_values
    for a in range(len(compiled.net_names)):
        if len(fanout[a]) != 1:
            continue
        if a in obs_slots or a in env_triggers or a in written:
            continue
        g = fanout[a][0]
        b = compiled.gate_output[g]
        if b == a or b in written:
            continue
        op = compiled.gate_op[g]
        row = compiled.gate_row[g]
        inputs = compiled.gate_inputs[g]
        for va in (0, 1):
            vb = _forced_output(op, row, inputs, a, va)
            if vb is None or initial[b] != vb:
                continue
            edges[(a, va)] = (b, vb)
    return edges


def _resolve_representatives(
    edges: Dict[Fault, Fault]
) -> Tuple[Dict[Fault, Fault], Dict[Fault, Tuple[Fault, ...]]]:
    """Follow the functional edge graph to its sinks (cycle-safe).

    Each fault has at most one outgoing edge, so chains resolve by path
    following; a cycle (a stuck ring collapses onto itself) elects its
    smallest member.  Every fault on a path maps to the terminal
    representative, keeping the event-subset ordering member <= rep.
    """
    rep_of: Dict[Fault, Fault] = {}

    def resolve(fault: Fault) -> Fault:
        path: List[Fault] = []
        on_path: Set[Fault] = set()
        cursor = fault
        while True:
            known = rep_of.get(cursor)
            if known is not None:
                rep = known
                break
            if cursor in on_path:
                # Cycle: everything from the first repeat is equivalent.
                cycle_start = path.index(cursor)
                rep = min(path[cycle_start:])
                break
            path.append(cursor)
            on_path.add(cursor)
            nxt = edges.get(cursor)
            if nxt is None:
                rep = cursor
                break
            cursor = nxt
        for step in path:
            rep_of[step] = rep
        rep_of[rep] = rep
        return rep

    for fault in edges:
        resolve(fault)
    members: Dict[Fault, List[Fault]] = {}
    for fault, rep in rep_of.items():
        members.setdefault(rep, []).append(fault)
    return rep_of, {
        rep: tuple(sorted(faults)) for rep, faults in members.items()
    }


def _out_of_cone_statics(
    compiled,
    obs_slots: Set[int],
    env_triggers: Set[int],
    max_events: int,
    golden_events: int,
    num_stimuli: int,
) -> Set[int]:
    """Net slots whose faults are provably ``(False, no observable difference)``.

    See the module docstring for the soundness conditions: the fanout
    closure of the net must avoid every observable, contain no
    ``OP_CALL`` gate, trigger no environment rule, be acyclic, and its
    worst-case extra event count (bounded by path counts times the
    number of events that can seed it) must fit under ``max_events``.
    """
    num_nets = len(compiled.net_names)
    fanout = compiled.fanout
    gate_output = compiled.gate_output
    gate_op = compiled.gate_op

    # succ[n]: output slots of gates reading n.
    succ: List[Tuple[int, ...]] = [
        tuple(dict.fromkeys(gate_output[g] for g in fanout[n]))
        for n in range(num_nets)
    ]
    statics: Set[int] = set()
    closure_cache: Dict[int, Optional[FrozenSet[int]]] = {}

    def closure(start: int) -> Optional[FrozenSet[int]]:
        """Fanout closure of ``start``, or None when a disqualifier appears."""
        if start in closure_cache:
            return closure_cache[start]
        region: Set[int] = set()
        stack = [start]
        result: Optional[FrozenSet[int]]
        while stack:
            net = stack.pop()
            if net in region:
                continue
            region.add(net)
            if net in obs_slots or net in env_triggers:
                closure_cache[start] = None
                return None
            for g in fanout[net]:
                if gate_op[g] == OP_CALL:
                    closure_cache[start] = None
                    return None
            stack.extend(succ[net])
        result = frozenset(region)
        closure_cache[start] = result
        return result

    spawn_cache: Dict[int, int] = {}

    def spawn(net: int, region: FrozenSet[int], trail: Set[int]) -> Optional[int]:
        """Max events one commit on ``net`` can spawn inside ``region``.

        ``None`` signals a cycle (oscillation possible -- disqualify).
        """
        cached = spawn_cache.get(net)
        if cached is not None:
            return cached
        if net in trail:
            return None
        trail.add(net)
        total = 0
        for g in fanout[net]:
            out = gate_output[g]
            sub = spawn(out, region, trail)
            if sub is None:
                return None
            total += 1 + sub
        trail.discard(net)
        spawn_cache[net] = total
        return total

    seeds = golden_events + len(compiled.gate_op) + num_stimuli + 4
    for n in range(num_nets):
        region = closure(n)
        if region is None:
            continue
        per_seed = spawn(n, region, set())
        if per_seed is None:
            continue
        # Any committed event (inside or outside the region) seeds at
        # most the worst single-net spawn; sum over the region is a
        # crude but provable ceiling for the initial perturbation too.
        worst = 0
        ok = True
        for m in region:
            s = spawn(m, region, set())
            if s is None:
                ok = False
                break
            worst = max(worst, s + 1)
        if not ok:
            continue
        region_total = sum(spawn_cache[m] + 1 for m in region)
        if golden_events + seeds * worst + region_total <= max_events:
            statics.add(n)
    return statics


class CollapseAnalysis(AnalysisPass):
    """Build a :class:`CollapsePlan` for one campaign configuration.

    Params (all hashable; see
    :func:`repro.analysis.compilecache.campaign_params` for the
    flattened rule/stimulus forms):

    * ``rules`` / ``stimuli`` -- the campaign environment.
    * ``observables`` -- observable net names, or ``None`` for the
      netlist's primary outputs (the engine default).
    * ``max_events`` / ``golden_events`` -- cap bookkeeping for the
      out-of-cone rule's provable event bound.
    """

    name = "collapse"
    depends = ("compile", "structure")
    aspects = ("topology", "values")

    def run(self, subject: Any, deps: Dict[str, Any], **params: Any) -> CollapsePlan:
        compiled = deps["compile"]
        net_index = compiled.net_index
        rules: Tuple = params["rules"]
        stimuli: Tuple = params["stimuli"]
        observables = params["observables"]
        max_events: int = params["max_events"]
        golden_events: int = params["golden_events"]
        if observables is None:
            observables = tuple(subject.primary_outputs or subject.nets)
        obs_slots = {
            net_index[net] for net in observables if net in net_index
        }
        env_triggers = {
            net_index[trigger]
            for trigger, _tv, _target, _gv, _d in rules
            if trigger in net_index
        }
        written = {
            net_index[target]
            for _t, _tv, target, _gv, _d in rules
            if target in net_index
        }
        written |= {
            net_index[net] for net, _v, _t in stimuli if net in net_index
        }

        initial = compiled.initial_values
        driver_of = compiled.driver_of
        static_same: Set[Fault] = set()
        noop = 0
        for slot in range(len(compiled.net_names)):
            if driver_of[slot] < 0:
                value = initial[slot]
                static_same.add((slot, value))
                noop += 1

        cone_statics = _out_of_cone_statics(
            compiled,
            obs_slots,
            env_triggers,
            max_events,
            golden_events,
            len(stimuli),
        )
        out_of_cone = 0
        for slot in cone_statics:
            for value in (0, 1):
                if (slot, value) not in static_same:
                    static_same.add((slot, value))
                    out_of_cone += 1

        edges = _chain_edges(compiled, obs_slots, env_triggers, written)
        # A statically-resolved fault never enters a class (and never
        # anchors one): drop edges touching the static set.
        edges = {
            src: dst
            for src, dst in edges.items()
            if src not in static_same and dst not in static_same
        }
        rep_of, members = _resolve_representatives(edges)
        stats = {
            "chain_edges": len(edges),
            "chain_merged": sum(1 for f, r in rep_of.items() if f != r),
            "static_noop": noop,
            "static_out_of_cone": out_of_cone,
        }
        return CollapsePlan(
            rep_of=rep_of,
            members=members,
            static_same=frozenset(static_same),
            stats=stats,
        )
