"""Structural netlist analyses: connectivity, cones, dominators.

The ``"structure"`` pass derives everything the static layer needs to
know about a netlist's shape without simulating it: the net-level
fanin/fanout graph, per-net output-cone membership (which primary
outputs a net can reach), and the post-dominator tree towards the
observable sink (the skeleton classic fault collapsing hangs
equivalence classes on).  It reads only the ``"topology"`` aspect, so
cached results survive ``set_initial_value`` mutations.

The ``"packed-fanout"`` pass caches the fault-simulation drain loop's
per-net packed fanout tuples on a :class:`~repro.engine.events.CompiledNetlist`
(identity-keyed -- compiled views are immutable), so every
:class:`~repro.engine.faultsim._FaultSweep` over one compiled object
shares a single packing instead of rebuilding it per engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.manager import AnalysisPass


@dataclass(frozen=True)
class NetlistStructure:
    """Immutable structural view of one netlist (net-name keyed).

    Attributes
    ----------
    nets:
        All nets in sorted order (the compiled slot order).
    driver_gate:
        net -> driving gate name (absent for undriven nets).
    fanout_gates:
        net -> names of gates reading the net, in gate insertion order.
    fanout_nets:
        net -> successor nets (outputs of the reading gates, deduped,
        order preserved) -- the edge relation of the influence graph.
    fanin_nets:
        net -> the driving gate's input nets (empty for undriven nets).
    output_cone:
        net -> the primary outputs the net can reach through gates.  An
        empty set means no fault effect on the net can propagate to a
        primary output structurally.
    dominators:
        net -> its strict dominators towards the output sink: nets every
        path from this net to *any* primary output must pass through.
        Empty for nets that reach no output.
    immediate_dominator:
        net -> the closest strict dominator, when one exists.
    """

    nets: Tuple[str, ...]
    driver_gate: Dict[str, str]
    fanout_gates: Dict[str, Tuple[str, ...]]
    fanout_nets: Dict[str, Tuple[str, ...]]
    fanin_nets: Dict[str, Tuple[str, ...]]
    output_cone: Dict[str, FrozenSet[str]]
    dominators: Dict[str, FrozenSet[str]]
    immediate_dominator: Dict[str, Optional[str]]

    def in_cone(self, net: str) -> bool:
        """True when the net structurally reaches some primary output."""
        return bool(self.output_cone.get(net))


def _output_cones(
    nets: Tuple[str, ...],
    fanin_nets: Dict[str, Tuple[str, ...]],
    outputs: Tuple[str, ...],
) -> Dict[str, FrozenSet[str]]:
    cone_sets: Dict[str, set] = {net: set() for net in nets}
    for output in outputs:
        stack = [output]
        seen = {output}
        while stack:
            net = stack.pop()
            cone_sets[net].add(output)
            for upstream in fanin_nets.get(net, ()):
                if upstream not in seen:
                    seen.add(upstream)
                    stack.append(upstream)
    return {net: frozenset(members) for net, members in cone_sets.items()}


def _dominators(
    nets: Tuple[str, ...],
    fanout_nets: Dict[str, Tuple[str, ...]],
    output_cone: Dict[str, FrozenSet[str]],
) -> Tuple[Dict[str, FrozenSet[str]], Dict[str, Optional[str]]]:
    """Strict dominators towards a virtual sink fed by every primary output.

    Iterative set-intersection dataflow over the (possibly cyclic --
    asynchronous circuits are feedback loops) influence graph:
    ``dom(n) = {n} | intersection of dom(s)`` over successors that reach
    the sink, with ``dom(sink) = {}``.  Nets outside every cone get the
    empty set.  Small graphs (hundreds of nets) make the naive fixpoint
    plenty fast.
    """
    reaching = [net for net in nets if output_cone.get(net)]
    if not reaching:
        return {net: frozenset() for net in nets}, {net: None for net in nets}
    universe = set(reaching)
    # Successors restricted to sink-reaching nets; a primary output's
    # "virtual sink" successor is modelled by allowing its intersection
    # term to be empty.
    succ: Dict[str, List[str]] = {
        net: [s for s in fanout_nets.get(net, ()) if s in universe]
        for net in reaching
    }
    is_exit = {net: bool(output_cone[net] & {net}) for net in reaching}
    dom: Dict[str, set] = {net: set(universe) for net in reaching}
    changed = True
    while changed:
        changed = False
        for net in reaching:
            terms = [dom[s] for s in succ[net]]
            if is_exit[net]:
                # The net is itself a primary output: one path ends here.
                merged = set()
            elif terms:
                merged = set.intersection(*terms)
            else:
                merged = set()
            merged = merged | {net}
            if merged != dom[net]:
                dom[net] = merged
                changed = True
    strict = {net: frozenset(dom[net] - {net}) for net in reaching}
    for net in nets:
        strict.setdefault(net, frozenset())
    # The immediate dominator is the strict dominator dominated by all
    # the others -- equivalently the one with the largest dominator set.
    idom: Dict[str, Optional[str]] = {}
    for net in nets:
        candidates = strict[net]
        if not candidates:
            idom[net] = None
            continue
        idom[net] = max(candidates, key=lambda d: (len(strict[d]), d))
    return strict, idom


class StructureAnalysis(AnalysisPass):
    """Connectivity, cones, and dominators for a ``Netlist``."""

    name = "structure"
    aspects = ("topology",)

    def run(self, subject: Any, deps: Dict[str, Any], **params: Any) -> NetlistStructure:
        nets = tuple(subject.nets)
        outputs = tuple(subject.primary_outputs)
        driver_gate: Dict[str, str] = {}
        fanin_nets: Dict[str, Tuple[str, ...]] = {}
        fanout_gates: Dict[str, List[str]] = {net: [] for net in nets}
        fanout_nets: Dict[str, List[str]] = {net: [] for net in nets}
        for gate in subject.gates:
            driver_gate[gate.output] = gate.name
            fanin_nets[gate.output] = tuple(gate.inputs)
            for net in dict.fromkeys(gate.inputs):
                fanout_gates[net].append(gate.name)
                if gate.output not in fanout_nets[net]:
                    fanout_nets[net].append(gate.output)
        fanout_gates_t = {net: tuple(gs) for net, gs in fanout_gates.items()}
        fanout_nets_t = {net: tuple(ns) for net, ns in fanout_nets.items()}
        for net in nets:
            fanin_nets.setdefault(net, ())
        output_cone = _output_cones(nets, fanin_nets, outputs)
        dominators, immediate = _dominators(nets, fanout_nets_t, output_cone)
        return NetlistStructure(
            nets=nets,
            driver_gate=driver_gate,
            fanout_gates=fanout_gates_t,
            fanout_nets=fanout_nets_t,
            fanin_nets=fanin_nets,
            output_cone=output_cone,
            dominators=dominators,
            immediate_dominator=immediate,
        )


class PackedFanoutAnalysis(AnalysisPass):
    """Fault-free packed fanout tables for a ``CompiledNetlist``.

    Identity-keyed on the compiled object (no fingerprint aspects): the
    result is the drain loop's per-net ``(gate, op, row, inputs, output,
    delay)`` tuple list, built by the engine's own packer so the two
    can never drift.
    """

    name = "packed-fanout"
    aspects = ()

    def run(self, subject: Any, deps: Dict[str, Any], **params: Any) -> List[Tuple]:
        # Imported lazily: repro.engine.faultsim imports repro.analysis
        # at module level, so the reverse edge must bind at run time.
        from repro.engine.faultsim import pack_fanout_tables

        return pack_fanout_tables(subject)
