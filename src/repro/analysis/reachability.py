"""Reachability graphs as cached analyses.

PR 7 left STG/state-graph artifacts outside the pass manager; this
module folds the reachability layer in.  Two passes over a
:class:`~repro.petrinet.net.PetriNet` subject:

* ``"reachability-full"`` -- the complete marking graph
  (:func:`~repro.petrinet.reachability.build_reachability_graph`).
  What validation, conformance (via its spec index) and state-based
  synthesis consume; bound/liveness/reversibility queries need this one.
* ``"reachability-reduced"`` -- the stubborn-set reduced graph
  (:func:`~repro.petrinet.reachability.explore`), preserving exactly the
  deadlock markings at a fraction of the states.  What deadlock-freedom
  checks on large specifications consume.

Both read the ``"structure"`` and ``"marking"`` aspects of the net
(:meth:`~repro.petrinet.net.PetriNet.analysis_fingerprint`), so repeated
checks against one specification -- validate, then synthesize, then
verify -- enumerate its state space once, and a mutation to the net or
its initial marking invalidates exactly these entries.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.analysis.manager import AnalysisPass
from repro.petrinet.net import PetriNet
from repro.petrinet.reachability import (
    ReachabilityGraph,
    Reduction,
    build_reachability_graph,
    explore,
)

__all__ = ["ReachabilityFullAnalysis", "ReachabilityReducedAnalysis"]


class ReachabilityFullAnalysis(AnalysisPass):
    """Full breadth-first marking graph of a Petri net."""

    name = "reachability-full"
    aspects = ("structure", "marking")

    def run(
        self,
        subject: PetriNet,
        deps: Dict[str, Any],
        max_states: int = 1_000_000,
        bound: Optional[int] = None,
    ) -> ReachabilityGraph:
        return build_reachability_graph(subject, max_states=max_states, bound=bound)

    def param_key(self, **params: Any) -> Tuple:
        return tuple(sorted(params.items()))


class ReachabilityReducedAnalysis(AnalysisPass):
    """Stubborn-set reduced marking graph (deadlock-preserving)."""

    name = "reachability-reduced"
    aspects = ("structure", "marking")

    def run(
        self,
        subject: PetriNet,
        deps: Dict[str, Any],
        max_states: int = 1_000_000,
        bound: Optional[int] = None,
    ) -> ReachabilityGraph:
        return explore(
            subject, max_states=max_states, bound=bound, reduction=Reduction.DEADLOCKS
        )

    def param_key(self, **params: Any) -> Tuple:
        return tuple(sorted(params.items()))
