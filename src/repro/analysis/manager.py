"""Pass manager with invalidation-aware analysis caching.

Everything the engine layer knows about a netlist used to be recomputed
per call site: every :class:`~repro.engine.faultsim.FaultSimEngine`
compiled its netlist again, every campaign re-ran the golden trace, and
every sweep rebuilt its packed fanout tables.  This module is the
registry that makes those artifacts *analyses*: computed once, cached
against a content fingerprint, and recomputed only when a mutation
actually touched what they read.

Model
-----
An analysis is a subclass of :class:`AnalysisPass` registered under a
unique ``name``.  It declares

* ``depends`` -- names of other analyses whose results it consumes
  (resolved through the same manager, so shared dependencies are
  computed once), and
* ``aspects`` -- which *aspects* of the subject it reads.  A
  :class:`~repro.circuit.netlist.Netlist` exposes two:
  ``"topology"`` (nets, interface, gate instances/types) and
  ``"values"`` (initial net values).  Mutation hooks on the netlist bump
  a per-aspect version counter; fingerprints are recomputed only for
  moved counters.  An analysis reading only ``"topology"`` therefore
  stays cached across ``set_initial_value`` calls, while one reading
  both recomputes -- mutations invalidate exactly their dependents.

Cache entries are keyed by ``(analysis name, aspect fingerprints,
params)`` where ``params`` is the analysis-specific parameter key (a
campaign's environment rules, observables, ...), so differently
parameterised runs of one analysis coexist.  Entries are LRU-bounded per
manager.  Because keys are content fingerprints rather than object
identities, two equal netlists built from the same library share cached
results for free.

Immutable subjects (:class:`~repro.engine.events.CompiledNetlist`) have
no mutation counters; for them the manager caches by object identity in
the subject's own ``_analysis_cache`` slot, which lives and dies with
the object.

The module-level :func:`get` / :func:`invalidate` / :func:`stats` work
on a process-global default manager, which is what the engine entry
points use; tests build private :class:`PassManager` instances.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple, Type

__all__ = [
    "AnalysisError",
    "AnalysisPass",
    "PassManager",
    "register",
    "get",
    "invalidate",
    "stats",
    "default_manager",
]


class AnalysisError(Exception):
    """Raised for unknown analyses, bad subjects, or dependency cycles."""


class AnalysisPass:
    """Base class for analyses.

    Subclasses set ``name`` (registry key), ``depends`` (names of
    analyses resolved before :meth:`run` and passed in ``deps``), and
    ``aspects`` (subject aspects read -- the cache key ingredients).
    ``run`` receives the subject, a dict of dependency results, and the
    keyword params the caller handed to :meth:`PassManager.get`.
    """

    name: str = ""
    depends: Tuple[str, ...] = ()
    aspects: Tuple[str, ...] = ("topology", "values")

    def run(self, subject: Any, deps: Dict[str, Any], **params: Any) -> Any:
        raise NotImplementedError

    def param_key(self, **params: Any) -> Tuple:
        """Hashable cache key for the analysis parameters.

        The default requires every param value to be hashable; analyses
        taking richer params (rule lists, fault lists) override this.
        """
        return tuple(sorted(params.items()))


class PassManager:
    """Registry plus invalidation-aware result cache.

    ``max_entries`` bounds the fingerprint-keyed cache per manager (LRU
    eviction); identity-keyed results on immutable subjects are bounded
    by the subjects' own lifetimes instead.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self._passes: Dict[str, AnalysisPass] = {}
        self._cache: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    # -- registry ---------------------------------------------------------------------
    def register(self, pass_cls: Type[AnalysisPass]) -> Type[AnalysisPass]:
        """Register an analysis class (usable as a decorator)."""
        instance = pass_cls()
        if not instance.name:
            raise AnalysisError(f"{pass_cls.__name__} has no name")
        self._passes[instance.name] = instance
        return pass_cls

    def known(self, name: str) -> bool:
        return name in self._passes

    # -- fingerprints -----------------------------------------------------------------
    def _subject_key(self, subject: Any, aspects: Tuple[str, ...]) -> Optional[Tuple]:
        """Fingerprint tuple for a mutable subject, or None for identity caching.

        Subjects exposing ``analysis_fingerprint(aspect)`` (netlists,
        STGs via the adapter below) are content-keyed; subjects exposing
        an ``_analysis_cache`` slot (compiled netlists) are
        identity-keyed on the object itself.
        """
        fingerprint = getattr(subject, "analysis_fingerprint", None)
        if fingerprint is not None:
            return tuple(fingerprint(aspect) for aspect in aspects)
        # The slot descriptor lives on the class; the instance attribute
        # only exists once the first result is cached.
        if hasattr(type(subject), "_analysis_cache") or hasattr(subject, "__dict__"):
            return None
        raise AnalysisError(
            f"subject {type(subject).__name__} supports neither fingerprint "
            "nor identity caching"
        )

    # -- resolution -------------------------------------------------------------------
    def get(self, subject: Any, name: str, **params: Any) -> Any:
        """Resolve one analysis on ``subject``, computing or hitting cache."""
        return self._resolve(subject, name, params, ())

    def _resolve(
        self, subject: Any, name: str, params: Dict[str, Any], chain: Tuple[str, ...]
    ) -> Any:
        analysis = self._passes.get(name)
        if analysis is None:
            raise AnalysisError(f"unknown analysis {name!r}")
        if name in chain:
            raise AnalysisError(
                "analysis dependency cycle: " + " -> ".join(chain + (name,))
            )
        subject_key = self._subject_key(subject, analysis.aspects)
        param_key = analysis.param_key(**params)
        if subject_key is None:
            cache = self._identity_cache(subject)
            key = (name, param_key)
            if key in cache:
                self.hits += 1
                return cache[key]
            self.misses += 1
            result = self._run(subject, analysis, params, chain)
            cache[key] = result
            return result
        key = (name, subject_key, param_key)
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._cache.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        result = self._run(subject, analysis, params, chain)
        self._cache[key] = result
        while len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
        return result

    def _run(
        self,
        subject: Any,
        analysis: AnalysisPass,
        params: Dict[str, Any],
        chain: Tuple[str, ...],
    ) -> Any:
        deps = {
            dep: self._resolve(subject, dep, {}, chain + (analysis.name,))
            for dep in analysis.depends
        }
        return analysis.run(subject, deps, **params)

    def _identity_cache(self, subject: Any) -> Dict:
        cache = getattr(subject, "_analysis_cache", None)
        if cache is None:
            try:
                subject._analysis_cache = cache = {}
            except AttributeError as exc:  # no slot and no __dict__
                raise AnalysisError(
                    f"subject {type(subject).__name__} cannot hold an "
                    "identity cache"
                ) from exc
        return cache

    # -- maintenance ------------------------------------------------------------------
    def invalidate(self, name: Optional[str] = None) -> int:
        """Drop cached results (all, or one analysis); returns the count dropped.

        Content-fingerprint keying already invalidates mutated subjects
        automatically; this is the explicit hammer for tests and for
        callers that mutate gate types in place (which no fingerprint
        can see).
        """
        if name is None:
            dropped = len(self._cache)
            self._cache.clear()
            return dropped
        stale = [key for key in self._cache if key[0] == name]
        for key in stale:
            del self._cache[key]
        return len(stale)

    def stats(self) -> Dict[str, int]:
        """Cache counters: ``hits``, ``misses``, ``entries``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cache),
        }


class _Missing:
    __slots__ = ()


_MISSING = _Missing()

# Process-global default manager: the engine entry points resolve
# through it so independent campaigns on one netlist share artifacts.
_DEFAULT = PassManager()


def default_manager() -> PassManager:
    return _DEFAULT


def register(pass_cls: Type[AnalysisPass]) -> Type[AnalysisPass]:
    """Register an analysis on the default manager (decorator)."""
    return _DEFAULT.register(pass_cls)


def get(subject: Any, name: str, **params: Any) -> Any:
    """Resolve an analysis through the default manager."""
    return _DEFAULT.get(subject, name, **params)


def invalidate(name: Optional[str] = None) -> int:
    """Drop cached results on the default manager."""
    return _DEFAULT.invalidate(name)


def stats() -> Dict[str, int]:
    """Default-manager cache counters."""
    return _DEFAULT.stats()
