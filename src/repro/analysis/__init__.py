"""Static netlist-analysis layer: cached, dependency-aware passes.

Importing this package registers the standard analyses on the default
:class:`~repro.analysis.manager.PassManager`:

========================  ============================  =====================
name                      subject                       result
========================  ============================  =====================
``"structure"``           ``Netlist``                   :class:`~repro.analysis.structure.NetlistStructure`
``"compile"``             ``Netlist``                   :class:`~repro.engine.events.CompiledNetlist`
``"golden-signature"``    ``Netlist`` + campaign        fault-free signature dict
``"collapse"``            ``Netlist`` + campaign        :class:`~repro.analysis.collapse.CollapsePlan`
``"hazard-lint"``         ``Netlist``                   :class:`~repro.analysis.hazards.HazardLintReport`
``"packed-fanout"``       ``CompiledNetlist``           packed fanout tables
``"reachability-full"``   ``PetriNet``                  full :class:`~repro.petrinet.reachability.ReachabilityGraph`
``"reachability-reduced"`` ``PetriNet``                 stubborn-set reduced graph
========================  ============================  =====================

See :doc:`docs/analysis` for the dependency and invalidation model.
"""

from repro.analysis.manager import (
    AnalysisError,
    AnalysisPass,
    PassManager,
    default_manager,
    get,
    invalidate,
    register,
    stats,
)
from repro.analysis.structure import (
    NetlistStructure,
    PackedFanoutAnalysis,
    StructureAnalysis,
)
from repro.analysis.compilecache import (
    CompileAnalysis,
    GoldenSignatureAnalysis,
    campaign_params,
)
from repro.analysis.collapse import CollapseAnalysis, CollapsePlan
from repro.analysis.hazards import (
    HazardDiagnostic,
    HazardLintAnalysis,
    HazardLintReport,
)
from repro.analysis.reachability import (
    ReachabilityFullAnalysis,
    ReachabilityReducedAnalysis,
)

register(StructureAnalysis)
register(PackedFanoutAnalysis)
register(CompileAnalysis)
register(GoldenSignatureAnalysis)
register(CollapseAnalysis)
register(HazardLintAnalysis)
register(ReachabilityFullAnalysis)
register(ReachabilityReducedAnalysis)

__all__ = [
    "AnalysisError",
    "AnalysisPass",
    "PassManager",
    "default_manager",
    "get",
    "invalidate",
    "register",
    "stats",
    "NetlistStructure",
    "StructureAnalysis",
    "PackedFanoutAnalysis",
    "CompileAnalysis",
    "GoldenSignatureAnalysis",
    "campaign_params",
    "CollapseAnalysis",
    "CollapsePlan",
    "HazardDiagnostic",
    "HazardLintAnalysis",
    "HazardLintReport",
    "ReachabilityFullAnalysis",
    "ReachabilityReducedAnalysis",
]
