"""Behavioural model of the RAPPID microarchitecture.

The model follows the three intertwined self-timed cycles of Section 2.2:

* **Length decoding / instruction ready cycle** -- every byte column
  speculatively decodes the length of the instruction that would start
  there; an instruction is *ready* once its first byte's decoder has
  finished and all its bytes have arrived.
* **Tag cycle** -- a single tag revolves through the 16 x 4 torus, moving
  from the first byte of one instruction directly to the first byte of the
  next; its per-hop latency depends on the instruction length (fast path for
  common lengths).
* **Steering cycle** -- the tagged instruction is aligned across the
  crossbar into one of four output buffers; each buffer (row) works
  independently, so up to four instructions are in flight in the steering
  fabric.

Because every unit is self-timed, throughput follows the *average* of these
latencies rather than the worst case -- the central claim the model needs to
reproduce.  Energy is activity-based; area is a transistor-count estimate of
the sixteen decode columns, tag fabric, crossbar and buffers.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.rappid.isa import (
    decode_latency_ps,
    steering_latency_ps,
    tag_latency_ps,
)
from repro.rappid.workload import CacheLine, Instruction


@dataclass
class RappidConfig:
    """Structural and calibration parameters of the RAPPID model.

    ``prefetch_depth`` must be at least 1 (a line's arrival is defined
    relative to the consumption of the line ``prefetch_depth`` earlier);
    the run entry points reject depth 0 with a ``ValueError``.
    """

    columns: int = 16                 # byte columns / parallel length decoders
    rows: int = 4                     # output buffers (issue width)
    line_bytes: int = 16
    line_fetch_latency_ps: float = 150.0    # residual FIFO hand-off (prefetch hides the rest)
    prefetch_depth: int = 2                 # lines buffered ahead by the input FIFO
    output_buffer_cycle_ps: float = 380.0   # per-row buffer recovery time
    byte_latch_energy_pj: float = 0.9       # per byte latched
    decode_energy_pj: float = 4.5           # per length decoder activation
    tag_energy_pj: float = 1.6              # per tag hop
    steer_energy_pj: float = 6.0            # per instruction steered
    # Transistor-count model for area comparisons.
    transistors_per_decoder: int = 2600
    transistors_per_column_latch: int = 900
    transistors_tag_unit: int = 520          # per column
    transistors_crossbar_per_cell: int = 260  # per column x row
    transistors_output_buffer: int = 5200     # per row
    transistors_control_overhead: int = 9000


@dataclass
class RappidResult:
    """Measurements of one RAPPID simulation run."""

    config: RappidConfig
    instruction_count: int
    line_count: int
    total_time_ps: float
    issue_times_ps: List[float] = field(default_factory=list)
    instruction_latencies_ps: List[float] = field(default_factory=list)
    tag_intervals_ps: List[float] = field(default_factory=list)
    line_intervals_ps: List[float] = field(default_factory=list)
    steer_intervals_ps: List[float] = field(default_factory=list)
    energy_pj: float = 0.0

    @property
    def throughput_instructions_per_ns(self) -> float:
        if self.total_time_ps <= 0:
            return 0.0
        return 1000.0 * self.instruction_count / self.total_time_ps

    @property
    def average_latency_ps(self) -> float:
        return statistics.fmean(self.instruction_latencies_ps) if self.instruction_latencies_ps else 0.0

    @property
    def tag_rate_ghz(self) -> float:
        """Average tag cycle frequency in GHz."""
        if not self.tag_intervals_ps:
            return 0.0
        return 1000.0 / statistics.fmean(self.tag_intervals_ps)

    @property
    def steering_rate_ghz(self) -> float:
        if not self.steer_intervals_ps:
            return 0.0
        return 1000.0 / statistics.fmean(self.steer_intervals_ps)

    @property
    def length_decode_rate_ghz(self) -> float:
        if not self.line_intervals_ps:
            return 0.0
        # One length-decode cycle per line per column; the per-column rate is
        # the line consumption rate.
        return 1000.0 / statistics.fmean(self.line_intervals_ps)

    @property
    def lines_per_second(self) -> float:
        if self.total_time_ps <= 0:
            return 0.0
        return self.line_count / (self.total_time_ps * 1e-12)

    @property
    def power_watts(self) -> float:
        if self.total_time_ps <= 0:
            return 0.0
        return self.energy_pj * 1e-12 / (self.total_time_ps * 1e-12)

    @property
    def energy_per_instruction_pj(self) -> float:
        if not self.instruction_count:
            return 0.0
        return self.energy_pj / self.instruction_count

    @property
    def transistor_count(self) -> int:
        config = self.config
        return (
            config.columns
            * (
                config.transistors_per_decoder
                + config.transistors_per_column_latch
                + config.transistors_tag_unit
            )
            + config.columns * config.rows * config.transistors_crossbar_per_cell
            + config.rows * config.transistors_output_buffer
            + config.transistors_control_overhead
        )

    def summary(self) -> Dict[str, float]:
        return {
            "instructions": float(self.instruction_count),
            "throughput_per_ns": round(self.throughput_instructions_per_ns, 3),
            "avg_latency_ps": round(self.average_latency_ps, 1),
            "tag_rate_ghz": round(self.tag_rate_ghz, 2),
            "steering_rate_ghz": round(self.steering_rate_ghz, 2),
            "length_decode_rate_ghz": round(self.length_decode_rate_ghz, 2),
            "lines_per_second_millions": round(self.lines_per_second / 1e6, 1),
            "power_watts": round(self.power_watts, 3),
            "energy_per_instruction_pj": round(self.energy_per_instruction_pj, 2),
            "transistors": float(self.transistor_count),
        }


class RappidDecoder:
    """Discrete-event behavioural simulator of the RAPPID front end."""

    def __init__(self, config: Optional[RappidConfig] = None) -> None:
        self.config = config or RappidConfig()

    def run(self, instructions: Sequence[Instruction], lines: Sequence[CacheLine]) -> RappidResult:
        """Simulate the decoding and steering of an instruction stream.

        Delegates to the batched engine runner
        (:func:`repro.engine.rappid_batch.run_batched`), which performs the
        same floating-point operations in the same order as the retained
        :meth:`_reference_run`: every per-instruction time compares equal
        with ``==``.  Sole exception: ``energy_pj`` is accumulated as one
        closed-form sum and may differ from the reference in the last ulp.
        """
        from repro.engine.rappid_batch import run_batched

        fields = run_batched(self.config, instructions, lines)
        if fields is None:
            return RappidResult(
                config=self.config, instruction_count=0, line_count=0, total_time_ps=0.0
            )
        return RappidResult(config=self.config, **fields)

    def run_sharded(
        self,
        instructions: Sequence[Instruction],
        lines: Sequence[CacheLine],
        shards: int = 2,
        min_shard_instructions: int = 1_024,
        use_processes: Optional[bool] = None,
    ) -> RappidResult:
        """Exact evaluation of a very large stream across worker processes.

        Line-aligned shards are solved in parallel from cold seam states
        on compact flat arrays, then stitched onto the true warm
        trajectory by an exact seam fix-up (see
        :mod:`repro.engine.rappid_batch`): every measurement field is
        **bit-identical** to :meth:`run`, including ``energy_pj`` (both
        accumulate the same closed-form sum, which may differ from
        :meth:`_reference_run` in the last ulp).  Streams shorter than
        ``min_shard_instructions`` per shard are evaluated directly.
        ``use_processes``: ``None`` (default) applies the persistent-pool
        policy of :func:`repro.engine.pool.decide` (in-process on
        single-CPU hosts and below the calibrated per-shard threshold,
        otherwise the process-global worker pool, reused across calls);
        ``True``/``False`` force the pool / the in-process protocol --
        results are identical on every path.
        """
        from repro.engine.rappid_batch import run_sharded

        fields = run_sharded(
            self.config,
            instructions,
            lines,
            shards=shards,
            min_shard_instructions=min_shard_instructions,
            use_processes=use_processes,
        )
        if fields is None:
            return RappidResult(
                config=self.config, instruction_count=0, line_count=0, total_time_ps=0.0
            )
        return RappidResult(config=self.config, **fields)

    def _reference_run(self, instructions: Sequence[Instruction], lines: Sequence[CacheLine]) -> RappidResult:
        """Pre-engine per-instruction loop, kept as the differential oracle."""
        from repro.engine.rappid_batch import _validate_config

        config = self.config
        _validate_config(config)
        if not instructions:
            return RappidResult(config=config, instruction_count=0, line_count=0, total_time_ps=0.0)

        # Cache line arrival times.  The input FIFO prefetches
        # ``prefetch_depth`` lines ahead, so line ``i`` is already sitting in
        # the byte latches while line ``i - prefetch_depth`` is still being
        # consumed; only a small residual hand-off latency remains.
        line_arrival: Dict[int, float] = {}
        line_consumed: Dict[int, float] = {}

        def arrival_of(line_index: int) -> float:
            if line_index in line_arrival:
                return line_arrival[line_index]
            if line_index < config.prefetch_depth:
                line_arrival[line_index] = 0.0
            else:
                blocker = line_index - config.prefetch_depth
                # Explicit None check: a .get() default would evaluate the
                # recursion eagerly even when the blocker is already consumed.
                previous_done = line_consumed.get(blocker)
                if previous_done is None:
                    previous_done = arrival_of(blocker)
                line_arrival[line_index] = previous_done + config.line_fetch_latency_ps
            return line_arrival[line_index]

        energy = 0.0
        issue_times: List[float] = []
        latencies: List[float] = []
        tag_times: List[float] = []
        steer_times_per_row: Dict[int, List[float]] = {r: [] for r in range(config.rows)}
        buffer_free = [0.0] * config.rows

        previous_tag_time = 0.0
        previous_length = None

        for position, instruction in enumerate(instructions):
            first_line = instruction.start_byte // config.line_bytes
            last_line = (instruction.start_byte + instruction.length - 1) // config.line_bytes
            bytes_available = max(arrival_of(line) for line in range(first_line, last_line + 1))

            # Length decoding / instruction-ready cycle.
            ready = bytes_available + decode_latency_ps(
                instruction.length, instruction.instruction_class
            )
            energy += config.decode_energy_pj
            energy += config.byte_latch_energy_pj * instruction.length

            # Tag cycle: the tag reaches this instruction one tag hop after it
            # reached the previous one, and cannot leave before the
            # instruction is ready.
            if position == 0:
                tag_time = ready
            else:
                hop = tag_latency_ps(previous_length)
                tag_time = max(previous_tag_time + hop, ready)
            energy += config.tag_energy_pj
            tag_times.append(tag_time)

            # Steering cycle: the tagged instruction goes to the next output
            # buffer (round robin over rows).
            row = position % config.rows
            steer_start = max(tag_time, buffer_free[row])
            issue = steer_start + steering_latency_ps(instruction.length)
            buffer_free[row] = issue + config.output_buffer_cycle_ps
            energy += config.steer_energy_pj
            steer_times_per_row[row].append(issue)

            issue_times.append(issue)
            latencies.append(issue - bytes_available)

            # A line is consumed once the last instruction starting in it has
            # been tagged (its bytes are no longer needed by the front end).
            line_consumed[first_line] = max(line_consumed.get(first_line, 0.0), tag_time)

            previous_tag_time = tag_time
            previous_length = instruction.length

        total_time = max(issue_times)
        tag_intervals = [b - a for a, b in zip(tag_times, tag_times[1:]) if b > a]
        line_times = sorted(line_consumed.values())
        line_intervals = [b - a for a, b in zip(line_times, line_times[1:]) if b > a]
        steer_intervals: List[float] = []
        for row_times in steer_times_per_row.values():
            steer_intervals.extend(
                b - a for a, b in zip(row_times, row_times[1:]) if b > a
            )

        return RappidResult(
            config=config,
            instruction_count=len(instructions),
            line_count=len(lines),
            total_time_ps=total_time,
            issue_times_ps=issue_times,
            instruction_latencies_ps=latencies,
            tag_intervals_ps=tag_intervals,
            line_intervals_ps=line_intervals,
            steer_intervals_ps=steer_intervals,
            energy_pj=energy,
        )
