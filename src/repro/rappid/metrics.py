"""Table 1: RAPPID versus the 400 MHz clocked baseline.

The comparison reports the same four ratios and the testability figure the
paper tabulates: throughput, latency, power, area, and stuck-at testability.
Testability is measured on the representative relative-timed control cell
(the FIFO of Section 4) with the functional fault simulator, since running
fault simulation over the full behavioural microarchitecture model would
only re-measure the model, not the circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.rappid.clocked_baseline import ClockedDecoder, ClockedResult
from repro.rappid.microarch import RappidDecoder, RappidResult
from repro.rappid.workload import WorkloadGenerator


@dataclass
class Table1Comparison:
    """The paper's Table 1, as ratios of RAPPID over the clocked design."""

    rappid: RappidResult
    clocked: ClockedResult
    testability_percent: Optional[float] = None

    @property
    def throughput_ratio(self) -> float:
        clocked = self.clocked.throughput_instructions_per_ns
        return self.rappid.throughput_instructions_per_ns / clocked if clocked else 0.0

    @property
    def latency_ratio(self) -> float:
        """Clocked latency divided by RAPPID latency (>1 means RAPPID faster)."""
        rappid = self.rappid.average_latency_ps
        return self.clocked.average_latency_ps / rappid if rappid else 0.0

    @property
    def power_ratio(self) -> float:
        """Clocked energy per instruction divided by RAPPID's.

        The designs process the same workload in different amounts of time, so
        the iso-work comparison (energy per decoded instruction) is the
        meaningful one; a ratio above 1 means RAPPID dissipates less.
        """
        rappid = self.rappid.energy_per_instruction_pj
        return self.clocked.energy_per_instruction_pj / rappid if rappid else 0.0

    @property
    def area_penalty_percent(self) -> float:
        """Extra transistors of RAPPID relative to the clocked design."""
        clocked = self.clocked.transistor_count
        if not clocked:
            return 0.0
        return 100.0 * (self.rappid.transistor_count - clocked) / clocked

    def rows(self) -> Dict[str, float]:
        data = {
            "throughput_ratio": round(self.throughput_ratio, 2),
            "latency_ratio": round(self.latency_ratio, 2),
            "power_ratio": round(self.power_ratio, 2),
            "area_penalty_percent": round(self.area_penalty_percent, 1),
        }
        if self.testability_percent is not None:
            data["testability_percent"] = round(self.testability_percent, 1)
        return data

    def describe(self) -> str:
        lines = ["Table 1: RAPPID vs 400 MHz clocked decoder"]
        lines.append(
            f"  Throughput  {self.throughput_ratio:.1f}x   "
            f"({self.rappid.throughput_instructions_per_ns:.2f} vs "
            f"{self.clocked.throughput_instructions_per_ns:.2f} instructions/ns)"
        )
        lines.append(
            f"  Latency     {self.latency_ratio:.1f}x   "
            f"({self.rappid.average_latency_ps:.0f} vs "
            f"{self.clocked.average_latency_ps:.0f} ps)"
        )
        lines.append(
            f"  Power       {self.power_ratio:.1f}x   "
            f"({self.rappid.energy_per_instruction_pj:.1f} vs "
            f"{self.clocked.energy_per_instruction_pj:.1f} pJ/instruction)"
        )
        lines.append(
            f"  Area        {self.area_penalty_percent:+.0f}%  "
            f"({self.rappid.transistor_count} vs {self.clocked.transistor_count} "
            "transistors)"
        )
        if self.testability_percent is not None:
            lines.append(f"  Testability {self.testability_percent:.1f}%")
        return "\n".join(lines)


def compare_designs(
    instruction_count: int = 20_000,
    seed: int = 1,
    rappid_decoder: Optional[RappidDecoder] = None,
    clocked_decoder: Optional[ClockedDecoder] = None,
    testability_percent: Optional[float] = None,
) -> Table1Comparison:
    """Run both designs on the same synthetic workload and compare them."""
    generator = WorkloadGenerator(seed=seed)
    instructions, lines = generator.workload(instruction_count)
    rappid = (rappid_decoder or RappidDecoder()).run(instructions, lines)
    clocked = (clocked_decoder or ClockedDecoder()).run(instructions, lines)
    return Table1Comparison(
        rappid=rappid, clocked=clocked, testability_percent=testability_percent
    )
