"""RAPPID: the Revolving Asynchronous Pentium(R) Processor Instruction Decoder.

A behavioural reproduction of the microarchitecture of Section 2 / Figure 1:
sixteen speculative length decoders, a revolving tag unit, a crossbar
steering fabric into four output buffers, and the three intertwined
self-timed cycles (length decoding, steering, tag).  A 400 MHz clocked
baseline model provides the comparison column of Table 1.

The silicon's absolute numbers cannot be reproduced without the fab; the
model captures the structural reasons for the paper's results -- average-case
versus worst-case timing, activity-proportional versus clocked power, and
the area cost of sixteen-fold speculation.
"""

from repro.rappid.isa import InstructionClass, LENGTH_CLASSES, decode_latency_ps, tag_latency_ps
from repro.rappid.workload import CacheLine, Instruction, WorkloadGenerator
from repro.rappid.microarch import RappidConfig, RappidDecoder, RappidResult
from repro.rappid.clocked_baseline import ClockedConfig, ClockedDecoder, ClockedResult
from repro.rappid.metrics import Table1Comparison, compare_designs

__all__ = [
    "InstructionClass",
    "LENGTH_CLASSES",
    "decode_latency_ps",
    "tag_latency_ps",
    "CacheLine",
    "Instruction",
    "WorkloadGenerator",
    "RappidConfig",
    "RappidDecoder",
    "RappidResult",
    "ClockedConfig",
    "ClockedDecoder",
    "ClockedResult",
    "Table1Comparison",
    "compare_designs",
]
