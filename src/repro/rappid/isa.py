"""Simplified iA32 instruction-length model.

RAPPID's length decoders compute, speculatively at every byte position, the
length of the instruction that would start there.  The actual iA32 encoding
is irrelevant to the throughput experiments; what matters is the *length
distribution* (most instructions are short) and the fact that the hardware
is optimised for the common cases: common lengths get a fast tag-forward
path and common opcodes a fast length-decode path (Section 2.2).

The length classes and latency parameters below are behavioural-model
calibration, chosen so the three cycle domains land near the paper's
reported averages (tag ~3.6 GHz, steering ~0.9 GHz, length decoding
~0.7 GHz).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


class InstructionClass(enum.Enum):
    """Coarse instruction categories with distinct decode behaviour."""

    COMMON = "common"          # single-byte / simple opcodes
    MODRM = "modrm"            # opcode + ModRM (+ displacement)
    IMMEDIATE = "immediate"    # opcode + immediate data
    PREFIXED = "prefixed"      # prefix bytes present
    COMPLEX = "complex"        # long, rare instructions


@dataclass(frozen=True)
class LengthClass:
    """One bucket of the instruction-length distribution."""

    length: int
    instruction_class: InstructionClass
    probability: float


# Length distribution loosely following published x86 instruction statistics:
# short instructions dominate.  Probabilities sum to 1.
LENGTH_CLASSES: Tuple[LengthClass, ...] = (
    LengthClass(1, InstructionClass.COMMON, 0.18),
    LengthClass(2, InstructionClass.COMMON, 0.22),
    LengthClass(3, InstructionClass.MODRM, 0.20),
    LengthClass(4, InstructionClass.MODRM, 0.12),
    LengthClass(5, InstructionClass.IMMEDIATE, 0.10),
    LengthClass(6, InstructionClass.IMMEDIATE, 0.06),
    LengthClass(7, InstructionClass.PREFIXED, 0.05),
    LengthClass(8, InstructionClass.PREFIXED, 0.03),
    LengthClass(9, InstructionClass.COMPLEX, 0.02),
    LengthClass(10, InstructionClass.COMPLEX, 0.01),
    LengthClass(11, InstructionClass.COMPLEX, 0.01),
)

# Lengths whose tag-forwarding path is the optimised, fast one (Section 2.2:
# "The tag cycle is optimized for common lengths").
FAST_TAG_LENGTHS = frozenset({1, 2, 3, 4, 5, 6, 7})

# Behavioural latency parameters (picoseconds).
_TAG_FAST_PS = 260.0
_TAG_SLOW_PS = 900.0
_DECODE_BASE_PS = 1000.0
_DECODE_PER_CLASS_PS: Dict[InstructionClass, float] = {
    InstructionClass.COMMON: 0.0,
    InstructionClass.MODRM: 250.0,
    InstructionClass.IMMEDIATE: 400.0,
    InstructionClass.PREFIXED: 900.0,
    InstructionClass.COMPLEX: 1600.0,
}


def validate_distribution(classes: Sequence[LengthClass] = LENGTH_CLASSES) -> float:
    """Return the total probability mass (should be 1.0 within rounding)."""
    return sum(c.probability for c in classes)


def decode_latency_ps(length: int, instruction_class: InstructionClass) -> float:
    """Length-decode latency for one instruction at one byte position.

    Common instructions are optimised; long prefixed/complex instructions pay
    extra because more bytes must be examined before the length is known.
    """
    extra_bytes = max(length - 3, 0)
    return (
        _DECODE_BASE_PS
        + _DECODE_PER_CLASS_PS[instruction_class]
        + 60.0 * extra_bytes
    )


def tag_latency_ps(length: int) -> float:
    """Tag-forwarding latency from one instruction's first byte to the next.

    The 16-column revolving tag fabric has a dedicated fast path for common
    lengths; rare long instructions take the slow path across the torus.
    """
    return _TAG_FAST_PS if length in FAST_TAG_LENGTHS else _TAG_SLOW_PS


def steering_latency_ps(length: int) -> float:
    """Latency to align and steer one instruction across the crossbar."""
    return 580.0 + 35.0 * max(length - 4, 0)


def class_of_length(length: int) -> InstructionClass:
    """The instruction class used for a given length in the synthetic ISA."""
    for bucket in LENGTH_CLASSES:
        if bucket.length == length:
            return bucket.instruction_class
    return InstructionClass.COMPLEX
