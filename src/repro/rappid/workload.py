"""Synthetic instruction workloads.

The paper evaluates RAPPID on instruction streams delivered as 16-byte cache
lines.  Real traces are proprietary; the generator below draws instruction
lengths from the published-statistics-inspired distribution in
:mod:`repro.rappid.isa` (or a caller-supplied one) and packs them into cache
lines exactly as the front end would see them -- instructions may straddle
line boundaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.rappid.isa import (
    LENGTH_CLASSES,
    InstructionClass,
    LengthClass,
    class_of_length,
)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction in the synthetic stream."""

    index: int
    length: int
    instruction_class: InstructionClass
    start_byte: int  # absolute byte offset in the stream

    def line_of(self, line_bytes: int = 16) -> int:
        """Cache line holding the first byte, for a given line geometry."""
        return self.start_byte // line_bytes

    @property
    def line_index(self) -> int:
        """``line_of`` for the default 16-byte lines (use :meth:`line_of`
        whenever the configuration's ``line_bytes`` may differ)."""
        return self.start_byte // 16

    @property
    def column(self) -> int:
        """Byte column (0..15) of the first byte within a 16-byte line."""
        return self.start_byte % 16


@dataclass
class CacheLine:
    """One cache line with the instructions that *start* in it."""

    index: int
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)

    @property
    def average_length(self) -> float:
        if not self.instructions:
            return 0.0
        return sum(i.length for i in self.instructions) / len(self.instructions)


class WorkloadGenerator:
    """Generate reproducible synthetic instruction streams."""

    def __init__(
        self,
        seed: int = 0,
        length_classes: Sequence[LengthClass] = LENGTH_CLASSES,
        line_bytes: int = 16,
    ) -> None:
        self.seed = seed
        self.length_classes = list(length_classes)
        self.line_bytes = line_bytes
        self._rng = random.Random(seed)
        total = sum(c.probability for c in self.length_classes)
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"length distribution sums to {total}, expected 1.0")

    def _draw_length(self) -> LengthClass:
        roll = self._rng.random()
        cumulative = 0.0
        for bucket in self.length_classes:
            cumulative += bucket.probability
            if roll <= cumulative:
                return bucket
        return self.length_classes[-1]

    def instructions(self, count: int) -> List[Instruction]:
        """Generate ``count`` instructions laid out back to back in memory."""
        result: List[Instruction] = []
        offset = 0
        for index in range(count):
            bucket = self._draw_length()
            result.append(
                Instruction(
                    index=index,
                    length=bucket.length,
                    instruction_class=bucket.instruction_class,
                    start_byte=offset,
                )
            )
            offset += bucket.length
        return result

    def fixed_length_instructions(self, count: int, length: int) -> List[Instruction]:
        """A degenerate stream where every instruction has the same length.

        Used for the scalability sweeps of Figure 1: lines with many short
        instructions stress the tag and steering cycles, lines with few long
        instructions stress the length decoders.
        """
        result: List[Instruction] = []
        offset = 0
        for index in range(count):
            result.append(
                Instruction(
                    index=index,
                    length=length,
                    instruction_class=class_of_length(length),
                    start_byte=offset,
                )
            )
            offset += length
        return result

    def cache_lines(self, instructions: Sequence[Instruction]) -> List[CacheLine]:
        """Group instructions by the cache line their first byte lives in."""
        if not instructions:
            return []
        last = instructions[-1]
        line_count = (last.start_byte + last.length + self.line_bytes - 1) // self.line_bytes
        lines = [CacheLine(index=i) for i in range(line_count)]
        for instruction in instructions:
            lines[instruction.line_of(self.line_bytes)].instructions.append(
                instruction
            )
        return lines

    def workload(self, instruction_count: int) -> Tuple[List[Instruction], List[CacheLine]]:
        """Convenience: generate instructions and their cache lines."""
        instructions = self.instructions(instruction_count)
        return instructions, self.cache_lines(instructions)

    def statistics(self, instructions: Sequence[Instruction]) -> Dict[str, float]:
        """Summary statistics of a stream (mean length, class mix, etc.)."""
        if not instructions:
            return {"count": 0}
        lengths = [i.length for i in instructions]
        by_class: Dict[str, int] = {}
        for instruction in instructions:
            key = instruction.instruction_class.value
            by_class[key] = by_class.get(key, 0) + 1
        stats: Dict[str, float] = {
            "count": float(len(instructions)),
            "mean_length": sum(lengths) / len(lengths),
            "max_length": float(max(lengths)),
            "min_length": float(min(lengths)),
            "instructions_per_line": self.line_bytes / (sum(lengths) / len(lengths)),
        }
        for key, value in by_class.items():
            stats[f"class_{key}"] = value / len(instructions)
        return stats
