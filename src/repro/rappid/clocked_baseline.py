"""400 MHz clocked instruction length decoder baseline.

A behavioural model of the commercial clocked design the paper compares
against.  Its defining characteristics, and the reasons the asynchronous
design wins on throughput/latency/power, are structural:

* **Worst-case timing**: every pipeline stage is clocked at the period that
  accommodates the slowest instruction class, so common short instructions
  gain nothing.
* **Fixed issue bandwidth**: at most ``decoders_per_cycle`` instructions are
  length-decoded per clock regardless of how short they are.
* **Clocked power**: the clock tree and all latches switch every cycle,
  whether or not useful work happens, so power scales with frequency rather
  than activity.
* **Area**: the clocked design needs fewer, but wider, decoders (no
  sixteen-fold speculation), so its area is somewhat smaller -- the paper
  reports RAPPID paying a 22% area penalty.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.rappid.workload import CacheLine, Instruction


@dataclass
class ClockedConfig:
    """Parameters of the clocked baseline."""

    frequency_mhz: float = 400.0
    decoders_per_cycle: int = 3        # instructions length-decoded per clock
    pipeline_stages: int = 2           # fetch-align + decode/steer
    line_bytes: int = 16               # cache line geometry (matches RappidConfig)
    line_fetch_cycles: int = 0         # line prefetch hides the fetch cycle
    # Power model: energy per clock for the always-switching portion (clock
    # tree, latches, precharge) plus per-instruction decode energy.
    clock_energy_per_cycle_pj: float = 72.0
    decode_energy_pj: float = 7.5
    # Area model.
    transistors_per_decoder: int = 11000
    transistors_pipeline_overhead: int = 36000
    transistors_output_buffer: int = 5200
    rows: int = 4

    @property
    def period_ps(self) -> float:
        return 1e6 / self.frequency_mhz


@dataclass
class ClockedResult:
    """Measurements of one clocked-baseline run."""

    config: ClockedConfig
    instruction_count: int
    line_count: int
    cycles: int
    total_time_ps: float
    instruction_latencies_ps: List[float] = field(default_factory=list)
    energy_pj: float = 0.0

    @property
    def throughput_instructions_per_ns(self) -> float:
        if self.total_time_ps <= 0:
            return 0.0
        return 1000.0 * self.instruction_count / self.total_time_ps

    @property
    def average_latency_ps(self) -> float:
        return statistics.fmean(self.instruction_latencies_ps) if self.instruction_latencies_ps else 0.0

    @property
    def power_watts(self) -> float:
        if self.total_time_ps <= 0:
            return 0.0
        return self.energy_pj * 1e-12 / (self.total_time_ps * 1e-12)

    @property
    def energy_per_instruction_pj(self) -> float:
        if not self.instruction_count:
            return 0.0
        return self.energy_pj / self.instruction_count

    @property
    def transistor_count(self) -> int:
        config = self.config
        return (
            config.decoders_per_cycle * config.transistors_per_decoder
            + config.transistors_pipeline_overhead
            + config.rows * config.transistors_output_buffer
        )

    def summary(self) -> Dict[str, float]:
        return {
            "instructions": float(self.instruction_count),
            "throughput_per_ns": round(self.throughput_instructions_per_ns, 3),
            "avg_latency_ps": round(self.average_latency_ps, 1),
            "cycles": float(self.cycles),
            "power_watts": round(self.power_watts, 3),
            "energy_per_instruction_pj": round(self.energy_per_instruction_pj, 2),
            "transistors": float(self.transistor_count),
        }


class ClockedDecoder:
    """Cycle-based model of the 400 MHz clocked length decoder."""

    def __init__(self, config: Optional[ClockedConfig] = None) -> None:
        self.config = config or ClockedConfig()

    def run(self, instructions: Sequence[Instruction], lines: Sequence[CacheLine]) -> ClockedResult:
        config = self.config
        if not instructions:
            return ClockedResult(
                config=config, instruction_count=0, line_count=0, cycles=0, total_time_ps=0.0
            )

        period = config.period_ps
        latencies: List[float] = []
        cycle = config.line_fetch_cycles  # first line arrives after fetch
        decoded_in_cycle = 0
        current_line = 0
        line_arrival_cycle = 0

        for instruction in instructions:
            # A new cache line re-aligns the decoders (and may cost a fetch
            # cycle when prefetch cannot hide it).
            line_index = instruction.line_of(config.line_bytes)
            if line_index > current_line:
                current_line = line_index
                cycle += config.line_fetch_cycles
                if decoded_in_cycle:
                    cycle += 1
                decoded_in_cycle = 0
                line_arrival_cycle = cycle
            if decoded_in_cycle >= config.decoders_per_cycle:
                cycle += 1
                decoded_in_cycle = 0
            decoded_in_cycle += 1
            issue_cycle = cycle + config.pipeline_stages
            latencies.append((issue_cycle - line_arrival_cycle) * period)

        total_cycles = cycle + config.pipeline_stages + 1
        total_time = total_cycles * period
        energy = (
            total_cycles * config.clock_energy_per_cycle_pj
            + len(instructions) * config.decode_energy_pj
        )
        return ClockedResult(
            config=config,
            instruction_count=len(instructions),
            line_count=len(lines),
            cycles=total_cycles,
            total_time_ps=total_time,
            instruction_latencies_ps=latencies,
            energy_pj=energy,
        )
