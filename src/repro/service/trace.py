"""Structured per-request trace records for the decode service.

Every scheduling, batching, backpressure, cancellation, and engine
decision the service takes on behalf of one request lands in a single
dict -- the request's **trace** -- which is attached verbatim to the
terminal event (``result`` / ``error`` / ``cancelled``) streamed back to
the client.  This extends the engine's ``LAST_DECISION`` / ``PoolHealth``
convention one layer up: instead of guessing at scheduling behaviour
from timings, the concurrency test battery asserts against the recorded
decisions, exactly the way the chaos suite asserts against
:data:`repro.engine.resilience.LAST_HEALTH`.

Trace schema (all sections optional until the request reaches them)::

    {
      "request": str,            # client-chosen request id
      "tenant": str,
      "capability": str,         # handler name
      "admission": {             # FairScheduler.offer decision
        "decision": "admitted" | "rejected",
        "reason": "ok" | "queue-full" | "tenant-quota",
        "seq": int | None,       # global admission sequence number
        "queue_depth": int,      # occupancy *after* the decision
        "tenant_depth": int,
        "pressure": float,       # occupancy / capacity
        "backpressure": "accept" | "throttle" | "reject",
        "virtual_finish": float, # WFQ finish tag (admitted only)
      },
      "batch": {                 # batcher composition decision
        "id": int,
        "key": str,              # coalescing key the batch shares
        "position": int,         # this request's slot in the batch
        "size": int,             # requests coalesced into the batch
      },
      "cancelled": {"stage": "queued" | "running" | "shutdown"},
      "engine": {                # snapshots taken after the engine call
        "decision": {...},       # pool.LAST_DECISION.snapshot()
        "pool_health": {...},    # resilience.LAST_HEALTH.snapshot()
      },
    }

:data:`LAST_TRACE` mirrors the most recently completed request's trace
(context-scoped, like the records it extends) so in-process callers --
the load generator's smoke mode, tests driving handlers directly -- can
read the last decision trail without parsing the wire frames.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.engine import pool, resilience
from repro.engine.records import ScopedRecord

#: Trace of the most recently completed request in this context.
LAST_TRACE = ScopedRecord("service-last-trace")


def new_trace(request_id: str, tenant: str, capability: str) -> Dict[str, Any]:
    """A fresh trace record with the identifying fields filled in."""
    return {
        "request": request_id,
        "tenant": tenant,
        "capability": capability,
    }


def record_engine(trace: Dict[str, Any]) -> None:
    """Snapshot the engine decision records into ``trace``.

    Must be called on the thread that ran the engine work: the records
    are context-scoped, so only that context sees this request's
    decisions -- which is precisely what makes the snapshot race-free.
    """
    trace["engine"] = {
        "decision": pool.LAST_DECISION.snapshot(),
        "pool_health": resilience.LAST_HEALTH.snapshot(),
    }


def publish(trace: Dict[str, Any]) -> None:
    """Expose ``trace`` as :data:`LAST_TRACE` in the current context."""
    LAST_TRACE.clear()
    LAST_TRACE.update(trace)
