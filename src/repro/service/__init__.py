"""Decode-as-a-service: the asyncio front end over the RAPPID engine.

ROADMAP item 2.  One long-lived :class:`~repro.service.server.DecodeService`
accepts concurrent decode / coverage / reachability requests over a
newline-delimited-JSON protocol, admits them through a weighted
per-tenant fair scheduler with bounded-queue backpressure
(:mod:`repro.service.scheduler`), coalesces compatible requests into
engine batches (:mod:`repro.service.batcher`) that ride the persistent
shard pool, streams partial results while batches run, and attaches a
structured decision trace (:mod:`repro.service.trace`) to every terminal
event.  :mod:`repro.service.client` is the matching async client;
:mod:`repro.service.loadgen` drives load and the ``--smoke`` check.

The load-bearing contract: a service response is **bit-identical** to
the same request made directly against the engine API -- coalescing,
fairness, chaos, and concurrency only move work around, never change
results.  ``docs/service.md`` documents the protocol and the contracts.
"""

from repro.service.batcher import Batch, Batcher
from repro.service.client import (
    BackpressureRejected,
    RequestCancelled,
    RequestFailed,
    ServiceClient,
    ServiceError,
    ServiceResult,
)
from repro.service.scheduler import Admission, Entry, FairScheduler
from repro.service.server import DecodeService, ServiceConfig

__all__ = [
    "Admission",
    "BackpressureRejected",
    "Batch",
    "Batcher",
    "DecodeService",
    "Entry",
    "FairScheduler",
    "RequestCancelled",
    "RequestFailed",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceResult",
]
