"""Capability handlers: one module per engine capability.

Each handler module exposes the same four-name surface:

``NAME``
    The capability string clients put in their request frames.
``batch_key(params) -> str``
    The coalescing key: requests with equal ``(NAME, batch_key)`` may
    share one engine batch (see :mod:`repro.service.batcher`).  Keys
    must depend only on ``params``.
``cost(params) -> float``
    The request's weight-normalised cost charged by the fair scheduler.
``run(params, emit) -> dict``
    Execute the capability and return the result payload (a
    JSON-serialisable dict).  ``emit(chunk)`` streams partial-result
    chunks to the client while the engine works; the final payload must
    be **bit-identical** to the same call made directly against the
    engine API -- the concurrency and chaos batteries pin that.

Every handler routes its pool dispatch through the engine entry points
built on :func:`repro.engine.resilience.supervised_map` --
``run_sharded``, ``stuck_at_coverage``/``simulate_faults``, ``explore``
-- never through a raw executor.  ``scripts/lint_contracts.py``
(``handler-unsupervised-dispatch``) enforces this mechanically for
every module in this package.

:func:`register` lets tests and embedders add ad-hoc capabilities (any
object carrying the four names); the stock registry maps the three
engine capabilities of ROADMAP item 2.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.service.handlers import coverage, decode, reachability

#: Capability name -> handler module (or module-like object).
HANDLERS: Dict[str, Any] = {
    decode.NAME: decode,
    coverage.NAME: coverage,
    reachability.NAME: reachability,
}


def register(handler: Any) -> None:
    """Add (or replace) a capability handler at runtime.

    ``handler`` must expose ``NAME``, ``batch_key``, ``cost`` and
    ``run`` as described in the module docstring.  Used by the test
    battery to install controllable capabilities (e.g. a gate-blocked
    sleeper for cancellation tests); production capabilities live as
    modules in this package so the contract lint covers them.
    """
    for attribute in ("NAME", "batch_key", "cost", "run"):
        if not hasattr(handler, attribute):
            raise ValueError(f"handler lacks required attribute {attribute!r}")
    HANDLERS[handler.NAME] = handler


def get(name: str) -> Any:
    try:
        return HANDLERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown capability {name!r}; available: {sorted(HANDLERS)}"
        ) from exc
