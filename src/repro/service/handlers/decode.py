"""``decode`` capability: RAPPID instruction-stream decoding.

Wraps :class:`repro.rappid.microarch.RappidDecoder` -- the monolithic
:meth:`~repro.rappid.microarch.RappidDecoder.run` for small streams and
the exact sharded :meth:`~repro.rappid.microarch.RappidDecoder.run_sharded`
(whose cold-shard fan-out rides :func:`repro.engine.resilience.supervised_map`
over the persistent pool) when the request asks for shards.  The
workload itself is generated server-side from the request's seed, so a
request is a few hundred bytes no matter how many instructions it
decodes.

The result payload carries the run's exact scalar measurements plus
SHA-256 signatures over the full issue-time and latency trajectories
(little-endian float64 stream), so bit-identity against a direct engine
call is a string comparison.  With ``stream_chunk`` set, the handler
streams one partial per trajectory chunk -- first index, count, running
issue time, and the chunk's signature -- while the final payload still
covers the whole run.
"""

from __future__ import annotations

import hashlib
import json
import struct
from functools import lru_cache
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.rappid.microarch import RappidConfig, RappidDecoder
from repro.rappid.workload import WorkloadGenerator

NAME = "decode"

#: Cost normalisation: one scheduler cost unit per this many instructions.
COST_UNIT_INSTRUCTIONS = 10_000.0

_CONFIG_FIELDS = frozenset(RappidConfig.__dataclass_fields__)


def trajectory_signature(values: Sequence[float]) -> str:
    """SHA-256 over the exact float64 stream (order-sensitive)."""
    digest = hashlib.sha256()
    for value in values:
        digest.update(struct.pack("<d", value))
    return digest.hexdigest()


def _canonical(params: Dict[str, Any], keys: Sequence[str]) -> str:
    return json.dumps(
        {key: params.get(key) for key in keys}, sort_keys=True, default=str
    )


def batch_key(params: Dict[str, Any]) -> str:
    """Coalesce decode requests sharing a config and shard policy.

    The workload (seed, instruction count) is excluded on purpose:
    streams differing only in content ride one batch and share the warm
    pool; the config and shard policy determine the engine path taken.
    """
    return _canonical(params, ("config", "shards", "use_processes"))


def cost(params: Dict[str, Any]) -> float:
    count = int(params.get("instructions", 2_000))
    return max(1.0, count / COST_UNIT_INSTRUCTIONS)


@lru_cache(maxsize=32)
def _workload(
    seed: int, count: int, line_bytes: int
) -> Tuple[tuple, tuple]:
    """Deterministic (instructions, lines) for a request's workload knobs.

    Cached so coalesced batches repeating a workload (the load
    generator's steady state) skip regeneration; tuples keep the cache
    entries immutable.
    """
    generator = WorkloadGenerator(seed=seed, line_bytes=line_bytes)
    instructions = generator.instructions(count)
    lines = generator.cache_lines(instructions)
    return tuple(instructions), tuple(lines)


def run(
    params: Dict[str, Any], emit: Callable[[Dict[str, Any]], None]
) -> Dict[str, Any]:
    """Decode one synthetic stream; stream trajectory chunks, return payload."""
    overrides = dict(params.get("config") or {})
    unknown = set(overrides) - _CONFIG_FIELDS
    if unknown:
        raise ValueError(f"unknown RappidConfig fields: {sorted(unknown)}")
    config = RappidConfig(**overrides)
    seed = int(params.get("seed", 0))
    count = int(params.get("instructions", 2_000))
    if count < 1:
        raise ValueError("instructions must be at least 1")
    shards = int(params.get("shards", 0))
    use_processes = params.get("use_processes")

    instructions, lines = _workload(seed, count, config.line_bytes)
    decoder = RappidDecoder(config)
    if shards > 1:
        # Exact sharded path: supervised pool dispatch inside.
        result = decoder.run_sharded(
            list(instructions),
            list(lines),
            shards=shards,
            min_shard_instructions=int(
                params.get("min_shard_instructions", 1_024)
            ),
            use_processes=use_processes,
        )
    else:
        result = decoder.run(list(instructions), list(lines))

    chunk = int(params.get("stream_chunk", 0))
    if chunk > 0:
        for partial in partials_of(result, chunk):
            emit(partial)
    return payload_of(result)


def payload_of(result: Any) -> Dict[str, Any]:
    """The JSON payload for a :class:`RappidResult` (exact fields only).

    Shared by the server and by tests/benchmarks computing the direct
    engine baseline: bit-identity of two runs reduces to equality of the
    two payload dicts.
    """
    return {
        "instruction_count": result.instruction_count,
        "line_count": result.line_count,
        "total_time_ps": result.total_time_ps,
        "energy_pj": result.energy_pj,
        "throughput_instructions_per_ns": result.throughput_instructions_per_ns,
        "average_latency_ps": result.average_latency_ps,
        "issue_signature": trajectory_signature(result.issue_times_ps),
        "latency_signature": trajectory_signature(
            result.instruction_latencies_ps
        ),
    }


def partials_of(result: Any, chunk: int) -> List[Dict[str, Any]]:
    """The partial chunks :func:`run` would stream for ``result``.

    Used by tests to pin the streamed chunks bit-identical to a direct
    engine run without re-implementing the chunking.
    """
    partials: List[Dict[str, Any]] = []
    issues = result.issue_times_ps
    for first in range(0, len(issues), chunk):
        window = issues[first : first + chunk]
        partials.append(
            {
                "first": first,
                "count": len(window),
                "last_issue_ps": window[-1],
                "signature": trajectory_signature(window),
            }
        )
    return partials
