"""``coverage`` capability: stuck-at fault-simulation campaigns.

Wraps :func:`repro.testability.stuck_at_coverage` over a small registry
of deterministic circuits, so a request names a circuit instead of
shipping a netlist over the wire:

``buffer``
    A single BUF cell under toggle rules -- synthesis-free, the smoke
    and quick-mode workhorse.
``fifo_rt``
    The paper's RT-synthesized FIFO cell (synthesis runs once per
    process and is cached).
``fifo_rt_chain:N``
    ``N`` chained FIFO cells (the paper's Figure 6 structure) built at
    netlist level from the cached cell.

The campaign itself runs on the batch fault engine; with ``shards`` /
``use_processes`` set its fault-chunk round-robin dispatches through
:func:`repro.engine.resilience.supervised_map` on the persistent pool,
so worker failures degrade per-request, never per-server.  The payload
carries exact verdict counts plus the undetected fault list; partial
events stream the undetected rows in chunks.
"""

from __future__ import annotations

import json
from functools import lru_cache
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.circuit.analysis import (
    chain_environment_rules,
    fifo_environment_rules,
)
from repro.circuit.library import STANDARD_LIBRARY
from repro.circuit.netlist import Netlist, chain_handshake_cells
from repro.circuit.simulator import HandshakeRule
from repro.testability import stuck_at_coverage

NAME = "coverage"

#: Scheduler cost: one unit per this many picoseconds of campaign time.
COST_UNIT_DURATION_PS = 10_000.0

_CAMPAIGN_KEYS = (
    "circuit",
    "duration_ps",
    "seed",
    "delay_jitter",
    "environment_jitter",
    "shards",
    "use_processes",
    "collapse",
)


def batch_key(params: Dict[str, Any]) -> str:
    """Coalesce campaigns sharing a circuit and every campaign knob.

    Identical campaigns from different tenants land in one batch and
    compile their netlist once through the analysis-manager cache.
    """
    return json.dumps(
        {key: params.get(key) for key in _CAMPAIGN_KEYS},
        sort_keys=True,
        default=str,
    )


def cost(params: Dict[str, Any]) -> float:
    duration = float(params.get("duration_ps", 10_000.0))
    stages = 1
    circuit = str(params.get("circuit", "buffer"))
    if circuit.startswith("fifo_rt_chain:"):
        stages = max(1, int(circuit.split(":", 1)[1]))
    return max(1.0, stages * duration / COST_UNIT_DURATION_PS)


def _buffer_circuit() -> Tuple[Netlist, List[HandshakeRule], list]:
    netlist = Netlist("buffer")
    netlist.add_primary_input("a")
    netlist.add_primary_output("y")
    netlist.add_gate("buf", STANDARD_LIBRARY.get("BUF"), ["a"], "y")
    rules = [
        HandshakeRule("y", 1, "a", 0, 150.0),
        HandshakeRule("y", 0, "a", 1, 150.0),
    ]
    return netlist, rules, [("a", 1, 50.0)]


@lru_cache(maxsize=1)
def _fifo_rt_cell() -> Netlist:
    """The RT-synthesized FIFO cell, synthesized once per process."""
    from repro.stg import specs
    from repro.synthesis import synthesize_rt

    return synthesize_rt(specs.fifo_controller()).netlist


def resolve_circuit(
    name: str,
) -> Tuple[Netlist, List[HandshakeRule], list]:
    """(netlist, environment rules, stimuli) for a named circuit."""
    if name == "buffer":
        return _buffer_circuit()
    if name == "fifo_rt":
        return _fifo_rt_cell(), fifo_environment_rules(), [("li", 1, 50.0)]
    if name.startswith("fifo_rt_chain:"):
        stages = int(name.split(":", 1)[1])
        if stages < 1:
            raise ValueError(f"chain stages must be at least 1: {name!r}")
        return (
            chain_handshake_cells(_fifo_rt_cell(), stages),
            chain_environment_rules(stages),
            [("s0_li", 1, 50.0)],
        )
    raise ValueError(
        f"unknown circuit {name!r}; expected 'buffer', 'fifo_rt', "
        "or 'fifo_rt_chain:N'"
    )


def run(
    params: Dict[str, Any], emit: Callable[[Dict[str, Any]], None]
) -> Dict[str, Any]:
    """Run one campaign; stream undetected-fault chunks, return payload."""
    circuit = str(params.get("circuit", "buffer"))
    netlist, rules, stimuli = resolve_circuit(circuit)
    report = stuck_at_coverage(
        netlist,
        rules,
        initial_stimuli=stimuli,
        duration_ps=float(params.get("duration_ps", 10_000.0)),
        seed=int(params.get("seed", 7)),
        delay_jitter=float(params.get("delay_jitter", 0.0)),
        environment_jitter=float(params.get("environment_jitter", 0.0)),
        shards=params.get("shards"),
        use_processes=params.get("use_processes"),
        collapse=bool(params.get("collapse", True)),
    )
    payload = payload_of(report, circuit)
    chunk = int(params.get("stream_chunk", 0))
    if chunk > 0:
        rows = payload["undetected"]
        for first in range(0, len(rows), chunk):
            window = rows[first : first + chunk]
            emit({"first": first, "count": len(window), "undetected": window})
    return payload


def payload_of(report: Any, circuit: str) -> Dict[str, Any]:
    """The JSON payload for a :class:`CoverageReport` (exact fields).

    Shared with tests/benchmarks computing the direct engine baseline.
    """
    return {
        "circuit": circuit,
        "netlist": report.circuit,
        "total_faults": report.total_faults,
        "detected_faults": report.detected_faults,
        "coverage": report.coverage,
        "undetected": undetected_rows(report.undetected),
    }


def undetected_rows(faults: Sequence[Any]) -> List[List[Any]]:
    """Canonical ``[net, value]`` rows in campaign order."""
    return [[fault.net, fault.value] for fault in faults]
