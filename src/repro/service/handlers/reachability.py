"""``reachability`` capability: Petri-net state-space exploration.

Wraps :func:`repro.petrinet.reachability.explore` (stubborn-set
partial-order reduction, the deadlock-preserving default) and the flat
:func:`~repro.petrinet.reachability.build_reachability_graph` when a
request asks for the ``full`` graph.  Specs come from the STG library
(:data:`repro.stg.specs.ALL_SPECS`) by name; the parametric control
family is addressed as ``rappid_control:BxC`` (``B`` bytes x ``C``
columns), so a paper-scale verification is one small request frame.

Exploration is CPU-bound in-process (no pool dispatch to supervise --
``explore`` is itself the supervised entry point the contract lint
accepts for this module).  The payload pins the exact exploration
outcome: state count, deadlock markings (canonical sorted token lists),
and a deadlock-set signature, so service-vs-direct bit-identity is a
dict comparison.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List

from repro.petrinet.reachability import (
    Reduction,
    build_reachability_graph,
    explore,
)
from repro.stg import specs

NAME = "reachability"

#: Scheduler cost: one unit per this many explored-state budget.
COST_UNIT_STATES = 50_000.0

_KEYS = ("spec", "max_states", "reduction")


def batch_key(params: Dict[str, Any]) -> str:
    """Coalesce explorations of the same spec under the same budget."""
    return json.dumps(
        {key: params.get(key) for key in _KEYS}, sort_keys=True, default=str
    )


def cost(params: Dict[str, Any]) -> float:
    return max(1.0, float(params.get("max_states", 50_000)) / COST_UNIT_STATES)


def resolve_spec(name: str):
    """A spec's Petri net, by library name or ``rappid_control:BxC``."""
    if name.startswith("rappid_control:"):
        dims = name.split(":", 1)[1]
        try:
            n_bytes, n_columns = (int(part) for part in dims.split("x"))
        except ValueError as exc:
            raise ValueError(
                f"bad rappid_control dimensions {dims!r}; expected 'BxC'"
            ) from exc
        return specs.rappid_control(n_bytes, n_columns).net
    return specs.load_spec(name).net


def marking_rows(markings: List[Any]) -> List[List[List[Any]]]:
    """Canonical sorted ``[[place, count], ...]`` rows, sorted overall."""
    rows = [
        [[place, count] for place, count in sorted(m.as_dict().items())]
        for m in markings
    ]
    rows.sort()
    return rows


def run(
    params: Dict[str, Any], emit: Callable[[Dict[str, Any]], None]
) -> Dict[str, Any]:
    """Explore one spec; stream deadlock chunks, return the payload."""
    spec = str(params.get("spec", "fifo"))
    net = resolve_spec(spec)
    max_states = int(params.get("max_states", 50_000))
    mode = str(params.get("reduction", "deadlocks"))
    if mode == "full":
        graph = build_reachability_graph(net, max_states=max_states)
    elif mode == "deadlocks":
        graph = explore(
            net, max_states=max_states, reduction=Reduction.DEADLOCKS
        )
    else:
        raise ValueError(
            f"unknown reduction {mode!r}; expected 'deadlocks' or 'full'"
        )
    payload = payload_of(graph, spec, mode)
    chunk = int(params.get("stream_chunk", 0))
    if chunk > 0:
        rows = payload["deadlocks"]
        for first in range(0, len(rows), chunk):
            window = rows[first : first + chunk]
            emit({"first": first, "count": len(window), "deadlocks": window})
    return payload


def payload_of(graph: Any, spec: str, mode: str) -> Dict[str, Any]:
    """The JSON payload for a reachability graph (exact fields).

    Shared with tests/benchmarks computing the direct engine baseline.
    """
    deadlocks = marking_rows(graph.deadlocks())
    signature = hashlib.sha256(
        json.dumps(deadlocks, sort_keys=True).encode()
    ).hexdigest()
    return {
        "spec": spec,
        "reduction": mode,
        "states": len(graph.markings),
        "deadlocks": deadlocks,
        "deadlock_free": not deadlocks,
        "deadlock_signature": signature,
    }
