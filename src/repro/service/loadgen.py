"""Async load generator for the decode service.

Drives a local :class:`~repro.service.server.DecodeService` with ``N``
concurrent client sessions issuing back-to-back requests, and reports
requests/s, latency quantiles, the coalescing ratio, and the
reject/retry counts.  The benchmark suite
(``benchmarks/test_bench_service.py``) calls :func:`run_load` at
concurrency 1 / 10 / 100 to fill ``BENCH_service.json``; ``check.sh``
runs the one-line smoke::

    PYTHONPATH=src python -m repro.service.loadgen --smoke

which boots a server in-process, pushes a small mixed workload through
a few sessions, verifies one decode response bit-identical to the
direct engine call, and exits non-zero on any mismatch -- the cheapest
end-to-end proof that the service stack (protocol, scheduler, batcher,
handlers, engine) still holds together.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.client import (
    BackpressureRejected,
    ServiceClient,
    ServiceError,
)
from repro.service.server import DecodeService, ServiceConfig


@dataclass
class LoadReport:
    """Aggregate outcome of one load run (JSON-ready via ``as_dict``)."""

    clients: int
    requests: int
    completed: int
    rejected: int
    failed: int
    elapsed_s: float
    latencies_s: List[float] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def requests_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "elapsed_s": round(self.elapsed_s, 6),
            "requests_per_s": round(self.requests_per_s, 3),
            "p50_latency_s": round(self.latency_quantile(0.50), 6),
            "p99_latency_s": round(self.latency_quantile(0.99), 6),
            "coalescing_ratio": self.stats.get("coalescing_ratio", 0.0),
            "batches_built": self.stats.get("batches_built", 0),
            "requests_batched": self.stats.get("requests_batched", 0),
        }


def default_workload(index: int) -> Dict[str, Any]:
    """The canonical small decode request the load generator repeats.

    Every client reuses a tiny set of seeds so coalescing has something
    to win: requests sharing the config coalesce regardless of seed.
    """
    return {
        "capability": "decode",
        "params": {"seed": index % 4, "instructions": 400},
    }


async def _client_loop(
    host: str,
    port: int,
    tenant: str,
    requests: int,
    report: LoadReport,
    workload,
) -> None:
    client = await ServiceClient.connect(host, port, tenant=tenant)
    try:
        for index in range(requests):
            spec = workload(index)
            started = time.perf_counter()
            try:
                await client.request(spec["capability"], spec["params"])
            except BackpressureRejected as exc:
                report.rejected += 1
                await asyncio.sleep(exc.retry_after_ms / 1000.0)
                continue
            except ServiceError:
                report.failed += 1
                continue
            report.completed += 1
            report.latencies_s.append(time.perf_counter() - started)
    finally:
        await client.close()


async def run_load(
    *,
    clients: int = 10,
    requests_per_client: int = 10,
    config: Optional[ServiceConfig] = None,
    workload=default_workload,
) -> LoadReport:
    """Boot a service in-process, hammer it, return the aggregate report."""
    service = DecodeService(config or ServiceConfig())
    host, port = await service.start()
    report = LoadReport(
        clients=clients,
        requests=clients * requests_per_client,
        completed=0,
        rejected=0,
        failed=0,
        elapsed_s=0.0,
    )
    started = time.perf_counter()
    try:
        await asyncio.gather(
            *(
                _client_loop(
                    host, port, f"tenant-{i}", requests_per_client,
                    report, workload,
                )
                for i in range(clients)
            )
        )
    finally:
        report.elapsed_s = time.perf_counter() - started
        report.stats = service.stats()
        await service.shutdown()
    return report


async def _smoke() -> int:
    """End-to-end smoke: mixed workload + one bit-identity spot check."""
    from repro.rappid.microarch import RappidConfig, RappidDecoder
    from repro.rappid.workload import WorkloadGenerator
    from repro.service.handlers import decode as decode_handler

    service = DecodeService(ServiceConfig(capacity=64, window=4))
    host, port = await service.start()
    try:
        client = await ServiceClient.connect(host, port, tenant="smoke")
        try:
            decode_result, coverage_result, reach_result = (
                await asyncio.gather(
                    client.request(
                        "decode", {"seed": 3, "instructions": 300}
                    ),
                    client.request(
                        "coverage",
                        {"circuit": "buffer", "duration_ps": 2_000.0},
                    ),
                    client.request(
                        "reachability", {"spec": "fifo", "max_states": 2_000}
                    ),
                )
            )
            await client.ping()
            stats = await client.stats()
        finally:
            await client.close()
    finally:
        await service.shutdown()

    failures: List[str] = []
    generator = WorkloadGenerator(seed=3)
    instructions = generator.instructions(300)
    lines = generator.cache_lines(instructions)
    direct = decode_handler.payload_of(
        RappidDecoder(RappidConfig()).run(instructions, lines)
    )
    if decode_result.payload != direct:
        failures.append("decode payload differs from direct engine call")
    if coverage_result.payload.get("total_faults", 0) <= 0:
        failures.append("coverage campaign reported no faults")
    if not reach_result.payload.get("deadlock_free", False):
        failures.append("fifo spec unexpectedly reported deadlocks")
    if stats.get("results", 0) != 3:
        failures.append(f"server stats disagree: {stats}")

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "service smoke ok: "
        + json.dumps(
            {
                "decode_issue_signature": decode_result.payload[
                    "issue_signature"
                ][:12],
                "coverage": coverage_result.payload["coverage"],
                "reachability_states": reach_result.payload["states"],
            }
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the end-to-end smoke check and exit",
    )
    parser.add_argument("--clients", type=int, default=10)
    parser.add_argument("--requests", type=int, default=10)
    args = parser.parse_args(argv)
    if args.smoke:
        return asyncio.run(_smoke())
    report = asyncio.run(
        run_load(clients=args.clients, requests_per_client=args.requests)
    )
    print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
