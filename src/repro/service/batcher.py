"""Request coalescing: fair-order dispatch grouped into engine batches.

One engine batch is one job on the service's engine executor: its
requests run back to back on a single lane, sharing everything the
engine already knows how to share -- the warm persistent worker pool,
the analysis manager's compile/golden caches (a coalesced coverage batch
over one circuit compiles its netlist once), and the shared-memory
payload path.  Coalescing therefore never changes any request's result
-- batching is a *placement* decision, which is what makes the service's
bit-identity contract (service response == direct engine call) cheap to
keep.

Composition is deterministic: the batcher pops requests from the
:class:`~repro.service.scheduler.FairScheduler` in fair order and opens
a new batch exactly when the next request's coalescing key -- the
``(capability, batch_key)`` pair, where ``batch_key`` is computed by the
capability's handler from the request params -- differs from the current
batch's key, or when the current batch has reached ``window`` requests.
Given the same admission sequence, the same batches come out; the
concurrency battery pins that, and the benchmark reports the achieved
``coalescing ratio`` (requests per engine batch) in
``BENCH_service.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.scheduler import Entry, FairScheduler


@dataclass
class Batch:
    """One coalesced engine batch, dispatched as a single executor job."""

    id: int
    key: Tuple[str, str]  # (capability, batch_key)
    entries: List[Entry] = field(default_factory=list)

    @property
    def capability(self) -> str:
        return self.key[0]

    @property
    def size(self) -> int:
        return len(self.entries)


class Batcher:
    """Deterministic coalescing windows over a fair scheduler.

    ``window`` caps the requests coalesced into one batch.  The batcher
    owns the running coalescing counters surfaced by the service's
    ``stats`` op and the benchmark.
    """

    def __init__(self, *, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._next_id = 0
        self.requests_batched = 0
        self.batches_built = 0

    @property
    def coalescing_ratio(self) -> float:
        """Requests per engine batch so far (1.0 = no coalescing won)."""
        if not self.batches_built:
            return 0.0
        return self.requests_batched / self.batches_built

    def stats(self) -> Dict[str, float]:
        return {
            "requests_batched": self.requests_batched,
            "batches_built": self.batches_built,
            "coalescing_ratio": round(self.coalescing_ratio, 4),
        }

    def compose(
        self, scheduler: FairScheduler, *, max_batches: Optional[int] = None
    ) -> List[Batch]:
        """Drain ``scheduler`` into coalesced batches, fair order kept.

        Stops after ``max_batches`` batches (``None`` = drain fully) so
        the server can interleave batch execution with new admissions.
        """
        batches: List[Batch] = []
        current: Optional[Batch] = None
        while True:
            if max_batches is not None and len(batches) >= max_batches:
                # A full allowance with an open window: the window stays
                # conceptually open, but entries already popped belong to
                # it -- stop *before* popping the next entry instead.
                if current is None or current.size >= self.window:
                    break
                peek = scheduler.peek_key()
                if peek != current.key:
                    break
            entry = scheduler.next()
            if entry is None:
                break
            key = (entry.capability, entry.batch_key)
            if (
                current is None
                or key != current.key
                or current.size >= self.window
            ):
                if max_batches is not None and len(batches) >= max_batches:
                    # Cannot open another batch: put the entry back is
                    # impossible (pops are destructive), so this branch
                    # is unreachable thanks to the peek above -- kept as
                    # a guard for future edits.
                    raise AssertionError("batch allowance violated")
                current = Batch(id=self._next_id, key=key)
                self._next_id += 1
                batches.append(current)
                self.batches_built += 1
            current.entries.append(entry)
            self.requests_batched += 1
        return batches
