"""Asyncio front end: protocol, session lifecycle, batch dispatch.

``DecodeService`` is the long-lived entry point of ROADMAP item 2: many
clients hold newline-delimited-JSON sessions against one server, which
admits their decode / coverage / reachability requests through the
weighted fair scheduler (:mod:`repro.service.scheduler`), coalesces
compatible requests into engine batches
(:mod:`repro.service.batcher`), executes each batch on a small pool of
engine lanes (threads -- the engine parallelises across *processes*
underneath, via the persistent pool and
:func:`repro.engine.resilience.supervised_map`), and streams partial
results back per session while batches run.

Wire protocol (one JSON object per line, both directions)::

    -> {"op": "request", "id": str, "tenant": str,
        "capability": str, "params": {...}}
    -> {"op": "cancel", "id": str}
    -> {"op": "stats"} | {"op": "ping"}

    <- {"id", "event": "accepted", "seq": int, "backpressure": str}
    <- {"id", "event": "rejected", "reason": str, "backpressure": str,
        "retry_after_ms": float, "trace": {...}}           # terminal
    <- {"id", "event": "partial", "chunk": int, "payload": {...}}
    <- {"id", "event": "result", "payload": {...}, "trace": {...}}
    <- {"id", "event": "error", "error": str, "trace": {...}}
    <- {"id", "event": "cancelled", "stage": "queued" | "running"
        | "shutdown", "trace": {...}}
    <- {"event": "stats", "metrics": {...}} | {"event": "pong"}

Terminal events (``rejected`` / ``result`` / ``error`` / ``cancelled``)
carry the request's full decision trace (:mod:`repro.service.trace`).
Sessions are independent: a client that disconnects mid-stream only
withdraws its own queued requests and orphans its in-flight ones (the
batch finishes -- engine work is not interruptible -- and the results
are dropped); every other session is unaffected.  Backpressure is
bounded-queue admission control: a full queue rejects with
``retry_after_ms`` instead of buffering without limit.

Failure injection: the per-session writer consults
:func:`repro.engine.chaos.client_delay` (the ``slow-client`` point)
before each frame, and engine batches inherit the active
:class:`~repro.engine.chaos.ChaosPlan` exactly as scripted campaigns do
-- the chaos battery pins service payloads bit-identical under both.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engine import chaos
from repro.service import trace as trace_mod
from repro.service import handlers as handler_registry
from repro.service.batcher import Batch, Batcher
from repro.service.scheduler import Entry, FairScheduler

_CLOSE = object()  # writer-task sentinel


@dataclass
class ServiceConfig:
    """Tunables of one :class:`DecodeService` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port from start()
    capacity: int = 128  # global admission bound (queued requests)
    tenant_capacity: Optional[int] = None  # per-tenant bound (None = capacity)
    default_weight: float = 1.0
    throttle_ratio: float = 0.5
    window: int = 8  # max requests coalesced into one engine batch
    engine_lanes: int = 1  # concurrent engine batches (threads)


@dataclass
class _Request:
    """Server-side state of one admitted (or rejected) request."""

    request_id: str
    session: "_Session"
    tenant: str
    capability: str
    params: Dict[str, Any]
    trace: Dict[str, Any]
    entry: Optional[Entry] = None
    status: str = "new"  # new -> queued -> running -> done/cancelled
    cancel_requested: bool = False
    partials_sent: int = 0


@dataclass
class _Session:
    """One client connection: reader loop + serialised writer task."""

    id: int
    writer: asyncio.StreamWriter
    outbox: asyncio.Queue = field(default_factory=asyncio.Queue)
    writer_task: Optional[asyncio.Task] = None
    requests: Set[int] = field(default_factory=set)  # admission seqs
    closed: bool = False

    def post(self, frame: Any) -> None:
        """Queue a frame for this session (drops silently once closed)."""
        if not self.closed:
            self.outbox.put_nowait(frame)


class DecodeService:
    """The asyncio decode-as-a-service front end (see module docstring).

    ``auto_dispatch=False`` disables the background dispatcher: admitted
    requests stay queued until :meth:`dispatch_once` (or
    :meth:`resume_dispatch`) runs them -- the deterministic mode the
    concurrency battery uses to pin scheduling decisions.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        auto_dispatch: bool = True,
    ) -> None:
        self.config = config or ServiceConfig()
        self.scheduler = FairScheduler(
            capacity=self.config.capacity,
            tenant_capacity=self.config.tenant_capacity,
            default_weight=self.config.default_weight,
            throttle_ratio=self.config.throttle_ratio,
        )
        self.batcher = Batcher(window=self.config.window)
        self.metrics: Dict[str, int] = {
            "requests": 0,
            "admitted": 0,
            "rejected": 0,
            "results": 0,
            "errors": 0,
            "cancelled": 0,
            "partials": 0,
            "disconnects": 0,
            "sessions": 0,
        }
        self._auto_dispatch = auto_dispatch
        self._engine: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[int, _Session] = {}
        self._requests: Dict[int, _Request] = {}  # by admission seq
        self._next_session = 0
        self._lane_sem: Optional[asyncio.Semaphore] = None
        self._work = asyncio.Event()
        self._dispatcher: Optional[asyncio.Task] = None
        self._batch_tasks: Set[asyncio.Task] = set()
        self._client_tasks: Set[asyncio.Task] = set()
        self._stopping = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the (host, port) actually bound."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._engine = ThreadPoolExecutor(
            max_workers=self.config.engine_lanes,
            thread_name_prefix="engine-lane",
        )
        self._lane_sem = asyncio.Semaphore(self.config.engine_lanes)
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        if self._auto_dispatch:
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, resolve queued work, finish in-flight batches.

        Queued (not yet dispatched) requests are cancelled with
        ``stage="shutdown"`` events; in-flight batches always run to
        completion (engine work is not interruptible) and their results
        are delivered (``drain=True``) or dropped as cancelled
        (``drain=False``) before the sessions close.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._work.set()
            await self._dispatcher
            self._dispatcher = None
        # Withdraw everything still queued.
        for entry in self.scheduler.drain():
            state = entry.payload
            if entry.cancelled or state is None:
                continue
            self._finish_cancelled(state, "shutdown")
        # In-flight batches run to completion.
        if not drain:
            for state in self._requests.values():
                state.cancel_requested = True
        if self._batch_tasks:
            await asyncio.gather(*tuple(self._batch_tasks))
        if self._engine is not None:
            self._engine.shutdown(wait=True)
            self._engine = None
        for session in list(self._sessions.values()):
            await self._close_session(session)
        # Reader loops exit on the transport EOF the closes above cause;
        # reap them so loop teardown never cancels a live handler.
        if self._client_tasks:
            _done, pending = await asyncio.wait(
                tuple(self._client_tasks), timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    # -- session / protocol ----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        session = _Session(id=self._next_session, writer=writer)
        self._next_session += 1
        self._sessions[session.id] = session
        self.metrics["sessions"] += 1
        session.writer_task = asyncio.create_task(self._write_loop(session))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    frame = json.loads(line)
                except json.JSONDecodeError as exc:
                    session.post({"event": "protocol-error", "error": str(exc)})
                    continue
                self._handle_frame(session, frame)
        except (ConnectionResetError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            await self._abandon_session(session)

    def _handle_frame(self, session: _Session, frame: Dict[str, Any]) -> None:
        op = frame.get("op")
        if op == "request":
            self._admit(session, frame)
        elif op == "cancel":
            self._cancel(session, str(frame.get("id")))
        elif op == "stats":
            session.post({"event": "stats", "metrics": self.stats()})
        elif op == "ping":
            session.post({"event": "pong"})
        else:
            session.post(
                {"event": "protocol-error", "error": f"unknown op {op!r}"}
            )

    def _admit(self, session: _Session, frame: Dict[str, Any]) -> None:
        request_id = str(frame.get("id"))
        tenant = str(frame.get("tenant", "default"))
        capability = str(frame.get("capability", ""))
        params = frame.get("params") or {}
        self.metrics["requests"] += 1
        record = trace_mod.new_trace(request_id, tenant, capability)
        if weight := frame.get("weight"):
            self.scheduler.set_weight(tenant, float(weight))
        try:
            handler = handler_registry.get(capability)
            key = handler.batch_key(params)
            request_cost = handler.cost(params)
        except (KeyError, ValueError, TypeError) as exc:
            self.metrics["errors"] += 1
            session.post(
                {
                    "id": request_id,
                    "event": "error",
                    "error": str(exc),
                    "trace": record,
                }
            )
            return
        state = _Request(
            request_id=request_id,
            session=session,
            tenant=tenant,
            capability=capability,
            params=dict(params),
            trace=record,
        )
        admission = self.scheduler.offer(
            tenant, capability, key, cost=request_cost, payload=state
        )
        record["admission"] = admission.as_dict()
        if not admission.admitted:
            self.metrics["rejected"] += 1
            session.post(
                {
                    "id": request_id,
                    "event": "rejected",
                    "reason": admission.reason,
                    "backpressure": admission.backpressure,
                    "retry_after_ms": self.scheduler.retry_after_ms(),
                    "trace": record,
                }
            )
            return
        seq = admission.seq
        assert seq is not None
        state.entry = self.scheduler.entry_of(seq)
        state.status = "queued"
        self._requests[seq] = state
        session.requests.add(seq)
        self.metrics["admitted"] += 1
        session.post(
            {
                "id": request_id,
                "event": "accepted",
                "seq": seq,
                "backpressure": admission.backpressure,
            }
        )
        if self._auto_dispatch:
            self._work.set()

    def _cancel(self, session: _Session, request_id: str) -> None:
        for seq in sorted(session.requests):
            state = self._requests.get(seq)
            if state is None or state.request_id != request_id:
                continue
            if state.status == "queued" and self.scheduler.cancel(seq):
                self._finish_cancelled(state, "queued")
            else:
                # Already dispatched into a batch: the engine work is
                # not interruptible, so mark it and drop the result
                # when the batch completes.
                state.cancel_requested = True
            return
        session.post(
            {
                "id": request_id,
                "event": "protocol-error",
                "error": f"no active request {request_id!r} to cancel",
            }
        )

    def _finish_cancelled(self, state: _Request, stage: str) -> None:
        state.status = "cancelled"
        state.trace["cancelled"] = {"stage": stage}
        trace_mod.publish(state.trace)
        self.metrics["cancelled"] += 1
        self._drop_request(state)
        state.session.post(
            {
                "id": state.request_id,
                "event": "cancelled",
                "stage": stage,
                "trace": state.trace,
            }
        )

    def _drop_request(self, state: _Request) -> None:
        if state.entry is not None:
            self._requests.pop(state.entry.seq, None)
            state.session.requests.discard(state.entry.seq)

    async def _abandon_session(self, session: _Session) -> None:
        """Reader saw EOF/reset: withdraw the session's pending work."""
        session.closed = True
        self.metrics["disconnects"] += 1
        for seq in sorted(session.requests):
            state = self._requests.get(seq)
            if state is None:
                continue
            if state.status == "queued" and self.scheduler.cancel(seq):
                state.status = "cancelled"
                state.trace["cancelled"] = {"stage": "disconnect"}
                self.metrics["cancelled"] += 1
                self._requests.pop(seq, None)
            else:
                # In flight: finish the engine work, drop the result.
                state.cancel_requested = True
        session.requests.clear()
        await self._close_session(session)

    async def _close_session(self, session: _Session) -> None:
        session.closed = True
        self._sessions.pop(session.id, None)
        if session.writer_task is not None:
            session.outbox.put_nowait(_CLOSE)
            await session.writer_task
            session.writer_task = None
        try:
            session.writer.close()
            await session.writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass

    async def _write_loop(self, session: _Session) -> None:
        """Serialise this session's frames; absorb a dying transport."""
        broken = False
        while True:
            frame = await session.outbox.get()
            if frame is _CLOSE:
                return
            if broken:
                continue
            delay = chaos.client_delay()
            if delay:
                await asyncio.sleep(delay)
            try:
                session.writer.write(
                    json.dumps(frame, sort_keys=True).encode() + b"\n"
                )
                await session.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                broken = True

    # -- dispatch ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while not self._stopping:
            await self._work.wait()
            self._work.clear()
            if self._stopping:
                return
            while len(self.scheduler) and not self._stopping:
                started = await self._launch_one_batch()
                if not started:
                    break

    async def _launch_one_batch(self) -> bool:
        assert self._lane_sem is not None
        await self._lane_sem.acquire()
        if self._stopping:
            # Woken by shutdown: leave the queue for the drain pass.
            self._lane_sem.release()
            return False
        batches = self.batcher.compose(self.scheduler, max_batches=1)
        if not batches:
            self._lane_sem.release()
            return False
        task = asyncio.create_task(self._run_batch(batches[0]))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)
        return True

    async def dispatch_once(self) -> int:
        """Compose and run one batch to completion (deterministic mode).

        Returns the number of requests the batch carried (0 = nothing
        queued).  Available regardless of ``auto_dispatch``; the test
        battery uses it to pin batch composition and cancellation
        windows without racing a background dispatcher.
        """
        batches = self.batcher.compose(self.scheduler, max_batches=1)
        if not batches:
            return 0
        await self._run_batch(batches[0], own_lane=False)
        return batches[0].size

    def resume_dispatch(self) -> None:
        """Enable the background dispatcher on an auto_dispatch=False service."""
        if self._dispatcher is None:
            self._auto_dispatch = True
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._work.set()

    async def _run_batch(self, batch: Batch, *, own_lane: bool = True) -> None:
        loop = asyncio.get_running_loop()
        states: List[_Request] = []
        for position, entry in enumerate(batch.entries):
            state = entry.payload
            state.status = "running"
            state.trace["batch"] = {
                "id": batch.id,
                "key": batch.key[1],
                "position": position,
                "size": batch.size,
            }
            states.append(state)
        try:
            outcomes = await loop.run_in_executor(
                self._engine, self._execute_batch, loop, batch, states
            )
        finally:
            if own_lane and self._lane_sem is not None:
                self._lane_sem.release()
                self._work.set()
        for state, (kind, value) in zip(states, outcomes):
            trace_mod.publish(state.trace)
            self._drop_request(state)
            if kind == "cancelled":
                state.status = "cancelled"
                self.metrics["cancelled"] += 1
                state.session.post(
                    {
                        "id": state.request_id,
                        "event": "cancelled",
                        "stage": value,
                        "trace": state.trace,
                    }
                )
            elif kind == "error":
                state.status = "done"
                self.metrics["errors"] += 1
                state.session.post(
                    {
                        "id": state.request_id,
                        "event": "error",
                        "error": value,
                        "trace": state.trace,
                    }
                )
            else:
                state.status = "done"
                self.metrics["results"] += 1
                state.session.post(
                    {
                        "id": state.request_id,
                        "event": "result",
                        "payload": value,
                        "trace": state.trace,
                    }
                )

    def _execute_batch(
        self,
        loop: asyncio.AbstractEventLoop,
        batch: Batch,
        states: List[_Request],
    ) -> List[Tuple[str, Any]]:
        """Run a batch's requests back to back on one engine lane.

        Executes on an engine-lane thread: the context-scoped engine
        records (``LAST_DECISION`` / ``LAST_HEALTH``) belong to this
        lane, so the per-request engine snapshot cannot observe another
        lane's decisions.  Partial chunks are posted to the owning
        session through the loop (thread-safe hand-off).
        """
        handler = handler_registry.get(batch.capability)
        outcomes: List[Tuple[str, Any]] = []
        for state in states:
            if state.cancel_requested or state.session.closed:
                stage = "running" if state.cancel_requested else "disconnect"
                state.trace["cancelled"] = {"stage": stage}
                outcomes.append(("cancelled", stage))
                continue

            def emit(
                chunk_payload: Dict[str, Any], _state: _Request = state
            ) -> None:
                _state.partials_sent += 1
                self.metrics["partials"] += 1
                frame = {
                    "id": _state.request_id,
                    "event": "partial",
                    "chunk": _state.partials_sent - 1,
                    "payload": chunk_payload,
                }
                loop.call_soon_threadsafe(_state.session.post, frame)

            try:
                payload = handler.run(state.params, emit)
                trace_mod.record_engine(state.trace)
            except Exception as exc:  # application error: report, isolate
                trace_mod.record_engine(state.trace)
                state.trace["error"] = f"{type(exc).__name__}: {exc}"
                outcomes.append(("error", str(exc) or type(exc).__name__))
                continue
            if state.cancel_requested:
                state.trace["cancelled"] = {"stage": "running"}
                outcomes.append(("cancelled", "running"))
            else:
                outcomes.append(("result", payload))
        return outcomes

    # -- stats ------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            **self.metrics,
            "queued": len(self.scheduler),
            "pressure": round(self.scheduler.pressure(), 4),
            "backpressure": self.scheduler.backpressure_level(),
            **self.batcher.stats(),
        }
