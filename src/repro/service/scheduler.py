"""Weighted per-tenant fair scheduling, admission control, backpressure.

The scheduler is the service's pure, deterministic core: it never reads
the clock, never draws randomness beyond its construction arguments, and
every decision is a function of the arrival sequence alone.  The asyncio
front end (:mod:`repro.service.server`) drives it from the event loop;
the hypothesis property suite (``tests/test_service_scheduler.py``)
drives it directly with random arrival sequences and asserts the three
contracts the service depends on:

* **No tenant starvation** -- every admitted request is dispatched after
  finitely many ``next()`` calls, regardless of what other tenants
  offer.  Weighted fair queuing guarantees more: over any window in
  which two tenants stay backlogged, their normalised service
  (dispatched cost / weight) stays within one quantum of each other.
* **Work conservation** -- ``next()`` returns a request whenever any
  request is queued; the scheduler never idles work away.
* **Backpressure monotonicity** -- the advertised pressure level is a
  monotone function of queue occupancy: admitting can only raise it,
  dispatching can only lower it, and the three-level signal
  (``accept`` < ``throttle`` < ``reject``) never ranks a fuller queue
  below an emptier one.

The discipline is start-time weighted fair queuing: each admitted
request is stamped with a virtual finish time ``max(V, F_tenant) +
cost / weight``; ``next()`` always dispatches the smallest stamp,
breaking ties by admission sequence so the order is total and
deterministic.  Admission is bounded twice -- a global ``capacity`` and
a per-tenant ``tenant_capacity`` quota -- and every decision (admit or
reject, with queue depths, pressure, and the backpressure level at
decision time) is returned as an :class:`Admission` record that the
server copies into the request trace (:mod:`repro.service.trace`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Backpressure levels, ordered from calm to saturated.
ACCEPT = "accept"
THROTTLE = "throttle"
REJECT = "reject"
LEVELS = (ACCEPT, THROTTLE, REJECT)


@dataclass(frozen=True)
class Admission:
    """Record of one admission decision (trace-ready via ``as_dict``)."""

    decision: str  # "admitted" | "rejected"
    reason: str  # "ok" | "queue-full" | "tenant-quota"
    seq: Optional[int]
    queue_depth: int
    tenant_depth: int
    pressure: float
    backpressure: str
    virtual_finish: Optional[float] = None

    @property
    def admitted(self) -> bool:
        return self.decision == "admitted"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "decision": self.decision,
            "reason": self.reason,
            "seq": self.seq,
            "queue_depth": self.queue_depth,
            "tenant_depth": self.tenant_depth,
            "pressure": round(self.pressure, 6),
            "backpressure": self.backpressure,
            "virtual_finish": self.virtual_finish,
        }


@dataclass
class Entry:
    """One admitted request waiting for (or holding) a dispatch slot."""

    seq: int
    tenant: str
    capability: str
    batch_key: str
    cost: float
    virtual_finish: float
    payload: Any = None
    cancelled: bool = False


class FairScheduler:
    """Deterministic weighted fair queue with bounded admission.

    ``capacity`` bounds the total queued requests, ``tenant_capacity``
    (default: ``capacity``) bounds any one tenant's share, and
    ``throttle_ratio`` is the occupancy fraction at which the
    advertised backpressure level steps from ``accept`` to
    ``throttle``.  Tenants are registered implicitly on first offer
    with ``default_weight``; :meth:`set_weight` overrides per tenant.
    """

    def __init__(
        self,
        *,
        capacity: int = 128,
        tenant_capacity: Optional[int] = None,
        default_weight: float = 1.0,
        throttle_ratio: float = 0.5,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        if not 0.0 < throttle_ratio <= 1.0:
            raise ValueError("throttle_ratio must be in (0, 1]")
        self.capacity = capacity
        self.tenant_capacity = (
            capacity if tenant_capacity is None else tenant_capacity
        )
        self.default_weight = default_weight
        self.throttle_ratio = throttle_ratio
        self._weights: Dict[str, float] = {}
        self._tenant_finish: Dict[str, float] = {}
        self._tenant_depth: Dict[str, int] = {}
        self._heap: List[Tuple[float, int, Entry]] = []
        self._entries: Dict[int, Entry] = {}
        self._virtual_time = 0.0
        self._next_seq = 0
        self._queued = 0

    # -- weights ----------------------------------------------------------

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        self._weights[tenant] = float(weight)

    def weight_of(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    # -- occupancy / backpressure ----------------------------------------

    def __len__(self) -> int:
        return self._queued

    @property
    def virtual_time(self) -> float:
        return self._virtual_time

    def tenant_depth(self, tenant: str) -> int:
        return self._tenant_depth.get(tenant, 0)

    def pressure(self) -> float:
        """Queue occupancy as a fraction of capacity (0..1)."""
        return self._queued / self.capacity

    def backpressure_level(self) -> str:
        """The advertised signal for the *next* arrival.

        Monotone in occupancy by construction: ``reject`` at capacity,
        ``throttle`` from ``throttle_ratio`` up, ``accept`` below.
        """
        if self._queued >= self.capacity:
            return REJECT
        if self.pressure() >= self.throttle_ratio:
            return THROTTLE
        return ACCEPT

    def retry_after_ms(self) -> float:
        """Advisory client backoff, scaled to the queue's fullness."""
        return round(5.0 * max(self._queued, 1), 3)

    # -- admission --------------------------------------------------------

    def offer(
        self,
        tenant: str,
        capability: str,
        batch_key: str,
        *,
        cost: float = 1.0,
        payload: Any = None,
    ) -> Admission:
        """Admit or reject one arrival; returns the decision record."""
        if cost <= 0:
            raise ValueError("request cost must be positive")
        depth = self._tenant_depth.get(tenant, 0)
        if self._queued >= self.capacity:
            return Admission(
                "rejected", "queue-full", None, self._queued, depth,
                self.pressure(), REJECT,
            )
        if depth >= self.tenant_capacity:
            return Admission(
                "rejected", "tenant-quota", None, self._queued, depth,
                self.pressure(), self.backpressure_level(),
            )
        seq = self._next_seq
        self._next_seq += 1
        weight = self.weight_of(tenant)
        start = max(self._virtual_time, self._tenant_finish.get(tenant, 0.0))
        finish = start + cost / weight
        self._tenant_finish[tenant] = finish
        entry = Entry(
            seq=seq,
            tenant=tenant,
            capability=capability,
            batch_key=batch_key,
            cost=cost,
            virtual_finish=finish,
            payload=payload,
        )
        heapq.heappush(self._heap, (finish, seq, entry))
        self._entries[seq] = entry
        self._queued += 1
        self._tenant_depth[tenant] = depth + 1
        return Admission(
            "admitted", "ok", seq, self._queued, depth + 1,
            self.pressure(), self.backpressure_level(), finish,
        )

    # -- dispatch ---------------------------------------------------------

    def next(self) -> Optional[Entry]:
        """Dispatch the queued request with the smallest finish tag.

        Returns ``None`` only when the queue is empty (work
        conservation); cancelled entries are skipped and discarded.
        """
        while self._heap:
            finish, seq, entry = heapq.heappop(self._heap)
            if entry.cancelled or seq not in self._entries:
                continue
            del self._entries[seq]
            self._queued -= 1
            depth = self._tenant_depth.get(entry.tenant, 1) - 1
            if depth:
                self._tenant_depth[entry.tenant] = depth
            else:
                self._tenant_depth.pop(entry.tenant, None)
            self._virtual_time = max(self._virtual_time, finish)
            return entry
        return None

    def peek_key(self) -> Optional[Tuple[str, str]]:
        """(capability, batch_key) of the next dispatch, or ``None``."""
        while self._heap:
            _finish, seq, entry = self._heap[0]
            if entry.cancelled or seq not in self._entries:
                heapq.heappop(self._heap)
                continue
            return (entry.capability, entry.batch_key)
        return None

    def entry_of(self, seq: int) -> Optional[Entry]:
        """The still-queued entry with admission number ``seq``, if any."""
        return self._entries.get(seq)

    def cancel(self, seq: int) -> bool:
        """Withdraw a queued request; True when it was still queued."""
        entry = self._entries.pop(seq, None)
        if entry is None:
            return False
        entry.cancelled = True
        self._queued -= 1
        depth = self._tenant_depth.get(entry.tenant, 1) - 1
        if depth:
            self._tenant_depth[entry.tenant] = depth
        else:
            self._tenant_depth.pop(entry.tenant, None)
        return True

    def drain(self) -> List[Entry]:
        """Dispatch everything still queued, in fair order."""
        drained: List[Entry] = []
        while True:
            entry = self.next()
            if entry is None:
                return drained
            drained.append(entry)
