"""Async client for the decode service's JSONL protocol.

:class:`ServiceClient` multiplexes any number of concurrent requests
over one connection: a single reader task demultiplexes incoming frames
to per-request queues by the ``id`` field, so ``asyncio.gather`` over
many :meth:`ServiceClient.request` calls is the natural way to drive the
server hard (the load generator and the concurrency battery both do).

Terminal server events map onto exceptions so callers never have to
inspect frames: ``rejected`` raises :class:`BackpressureRejected` (with
the server's ``retry_after_ms`` hint), ``cancelled`` raises
:class:`RequestCancelled`, ``error`` raises :class:`RequestFailed`, and
a connection that dies mid-request raises :class:`ServiceError`.  A
successful request returns a :class:`ServiceResult` carrying the result
payload, the streamed partials in arrival order, and the server-side
decision trace.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

_EOF = object()


class ServiceError(Exception):
    """Base class: the request did not produce a result payload."""

    def __init__(self, message: str, trace: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.trace = trace or {}


class BackpressureRejected(ServiceError):
    """Admission control refused the request; back off and retry."""

    def __init__(
        self,
        reason: str,
        backpressure: str,
        retry_after_ms: float,
        trace: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(f"rejected: {reason} ({backpressure})", trace)
        self.reason = reason
        self.backpressure = backpressure
        self.retry_after_ms = retry_after_ms


class RequestCancelled(ServiceError):
    """The request was cancelled (by us, by disconnect, or by shutdown)."""

    def __init__(self, stage: str, trace: Optional[Dict[str, Any]] = None):
        super().__init__(f"cancelled while {stage}", trace)
        self.stage = stage


class RequestFailed(ServiceError):
    """The capability handler raised; the server stayed up."""


@dataclass
class ServiceResult:
    """Everything the server streamed back for one successful request."""

    request_id: str
    payload: Dict[str, Any]
    trace: Dict[str, Any]
    partials: List[Dict[str, Any]] = field(default_factory=list)
    accepted_seq: Optional[int] = None
    backpressure: Optional[str] = None


class ServiceClient:
    """One JSONL session against a :class:`~repro.service.server.DecodeService`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        tenant: str = "default",
        weight: Optional[float] = None,
    ) -> None:
        self.tenant = tenant
        self.weight = weight
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._inboxes: Dict[str, asyncio.Queue] = {}
        self._control: asyncio.Queue = asyncio.Queue()  # stats/pong frames
        self._reader_task = asyncio.create_task(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        weight: Optional[float] = None,
    ) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, tenant=tenant, weight=weight)

    # -- wire -------------------------------------------------------------

    async def _send(self, frame: Dict[str, Any]) -> None:
        if self._closed:
            raise ServiceError("client closed")
        self._writer.write(json.dumps(frame).encode() + b"\n")
        await self._writer.drain()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = json.loads(line)
                except json.JSONDecodeError:
                    continue
                request_id = frame.get("id")
                if request_id is not None and request_id in self._inboxes:
                    self._inboxes[request_id].put_nowait(frame)
                else:
                    self._control.put_nowait(frame)
        except (ConnectionResetError, OSError):
            pass
        finally:
            for inbox in self._inboxes.values():
                inbox.put_nowait(_EOF)
            self._control.put_nowait(_EOF)

    # -- requests ---------------------------------------------------------

    def _new_id(self) -> str:
        self._next_id += 1
        return f"{self.tenant}-{self._next_id}"

    async def submit(
        self, capability: str, params: Optional[Dict[str, Any]] = None
    ) -> str:
        """Send one request frame; returns its id (await :meth:`collect`)."""
        request_id = self._new_id()
        self._inboxes[request_id] = asyncio.Queue()
        frame: Dict[str, Any] = {
            "op": "request",
            "id": request_id,
            "tenant": self.tenant,
            "capability": capability,
            "params": params or {},
        }
        if self.weight is not None:
            frame["weight"] = self.weight
        await self._send(frame)
        return request_id

    async def collect(
        self,
        request_id: str,
        *,
        on_partial: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> ServiceResult:
        """Consume a submitted request's event stream to its terminal event."""
        inbox = self._inboxes[request_id]
        result = ServiceResult(request_id=request_id, payload={}, trace={})
        try:
            while True:
                frame = await inbox.get()
                if frame is _EOF:
                    raise ServiceError("connection closed mid-request")
                event = frame.get("event")
                if event == "accepted":
                    result.accepted_seq = frame.get("seq")
                    result.backpressure = frame.get("backpressure")
                elif event == "partial":
                    result.partials.append(frame.get("payload", {}))
                    if on_partial is not None:
                        on_partial(frame.get("payload", {}))
                elif event == "rejected":
                    raise BackpressureRejected(
                        frame.get("reason", "unknown"),
                        frame.get("backpressure", "reject"),
                        float(frame.get("retry_after_ms", 0.0)),
                        frame.get("trace"),
                    )
                elif event == "cancelled":
                    raise RequestCancelled(
                        frame.get("stage", "unknown"), frame.get("trace")
                    )
                elif event == "error":
                    raise RequestFailed(
                        frame.get("error", "unknown"), frame.get("trace")
                    )
                elif event == "result":
                    result.payload = frame.get("payload", {})
                    result.trace = frame.get("trace", {})
                    return result
                elif event == "protocol-error":
                    raise ServiceError(frame.get("error", "protocol error"))
        finally:
            self._inboxes.pop(request_id, None)

    async def request(
        self,
        capability: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        on_partial: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> ServiceResult:
        """Submit one request and await its result (the common path)."""
        request_id = await self.submit(capability, params)
        return await self.collect(request_id, on_partial=on_partial)

    async def cancel(self, request_id: str) -> None:
        """Ask the server to cancel; the terminal event lands via collect."""
        await self._send({"op": "cancel", "id": request_id})

    # -- control ----------------------------------------------------------

    async def stats(self) -> Dict[str, Any]:
        await self._send({"op": "stats"})
        while True:
            frame = await self._control.get()
            if frame is _EOF:
                raise ServiceError("connection closed awaiting stats")
            if frame.get("event") == "stats":
                return frame.get("metrics", {})

    async def ping(self) -> None:
        await self._send({"op": "ping"})
        while True:
            frame = await self._control.get()
            if frame is _EOF:
                raise ServiceError("connection closed awaiting pong")
            if frame.get("event") == "pong":
                return

    async def close(self, *, abort: bool = False) -> None:
        """Close the session.  ``abort=True`` drops the transport without
        a clean shutdown -- the battery's disconnect-mid-stream client."""
        if self._closed:
            return
        self._closed = True
        if abort:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()
        else:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
        await self._reader_task
