"""Library of standard STG specifications.

These are the specifications used throughout the paper and its experiments:

* :func:`fifo_controller` -- the FIFO cell of Figure 3: a four-phase
  handshake on the left (``li``/``lo``) and right (``ri``/``ro``) sides,
  coupled through a silent transition.
* :func:`fifo_controller_decoupled` -- a more concurrent variant used to
  stress the state-encoding step (exhibits a CSC conflict).
* :func:`celement` -- the static C-element used as the verification example
  of Section 5.
* :func:`simple_handshake` -- a minimal request/acknowledge wire.
* :func:`pipeline_latch_controller` -- a standard 4-phase latch controller.
* :func:`toggle` / :func:`call_element` / :func:`arbiter_free_mux` --
  additional controller-scale benchmarks for the test and benchmark suites.
"""

from __future__ import annotations

from repro.stg.builder import StgBuilder
from repro.stg.model import SignalTransitionGraph


def simple_handshake(name: str = "handshake") -> SignalTransitionGraph:
    """A single four-phase request/acknowledge handshake.

    ``req`` is an input driven by the environment; ``ack`` is the output.
    """
    builder = StgBuilder(name)
    builder.input("req")
    builder.output("ack")
    builder.arc("req+", "ack+")
    builder.arc("ack+", "req-")
    builder.arc("req-", "ack-")
    builder.arc("ack-", "req+", marked=True)
    return builder.build()


def fifo_controller(name: str = "fifo") -> SignalTransitionGraph:
    """The FIFO cell specification of Figure 3.

    Left handshake: ``li`` (input request), ``lo`` (output acknowledge).
    Right handshake: ``ro`` (output request), ``ri`` (input acknowledge).

    The left cycle is ``li+ -> lo+ -> li- -> lo- -> li+``; the right cycle is
    ``ro+ -> ri+ -> ro- -> ri- -> ro+``.  A silent transition couples the
    two: once the data has been acknowledged on the left the cell issues the
    request on the right, and the left acknowledge is not released until the
    right request has been issued (so the data item is safely forwarded).
    """
    builder = StgBuilder(name)
    builder.inputs("li", "ri")
    builder.outputs("lo", "ro")

    # Left handshake cycle.
    builder.arc("li+", "lo+")
    builder.arc("lo+", "li-")
    builder.arc("li-", "lo-")
    builder.arc("lo-", "li+", marked=True)

    # Right handshake cycle.
    builder.arc("ro+", "ri+")
    builder.arc("ri+", "ro-")
    builder.arc("ro-", "ri-")
    builder.arc("ri-", "ro+", marked=True)

    # Coupling through a silent transition (the epsilon of Figure 3):
    # data latched on the left triggers the right request...
    eps = builder.silent("eps")
    builder.arc("lo+", eps)
    builder.arc(eps, "ro+")
    # ...and the left acknowledge is held until the right request is issued.
    builder.arc("ro+", "lo-")
    return builder.build()


def fifo_controller_decoupled(name: str = "fifo_decoupled") -> SignalTransitionGraph:
    """A more concurrent FIFO cell that exhibits a CSC conflict.

    Compared to :func:`fifo_controller`, the left handshake is allowed to
    complete (``lo-``) as soon as the silent transition has fired, without
    waiting for the right request.  The states before and after the right
    handshake then share binary codes, forcing the state-encoding step to
    insert an internal signal -- the ``x`` of Figure 5.
    """
    builder = StgBuilder(name)
    builder.inputs("li", "ri")
    builder.outputs("lo", "ro")

    builder.arc("li+", "lo+")
    builder.arc("lo+", "li-")
    builder.arc("li-", "lo-")
    builder.arc("lo-", "li+", marked=True)

    builder.arc("ro+", "ri+")
    builder.arc("ri+", "ro-")
    builder.arc("ro-", "ri-")
    builder.arc("ri-", "ro+", marked=True)

    eps = builder.silent("eps")
    builder.arc("lo+", eps)
    builder.arc(eps, "ro+")
    # New data may only be accepted after the previous right handshake has
    # returned to zero, but the left acknowledge may fall early.
    builder.arc("ro-", "li+")
    # Balance the ro- -> li+ place: it must be marked initially because no
    # right handshake precedes the very first left request.
    marking = builder.build().net.initial_marking.as_dict()
    stg = builder.build()
    for place in stg.net.places:
        producers = stg.net.place_preset(place.name)
        consumers = stg.net.place_postset(place.name)
        if producers == ["ro-"] and consumers == ["li+"]:
            marking[place.name] = 1
    stg.set_initial_marking(marking)
    return stg


def celement(name: str = "celement") -> SignalTransitionGraph:
    """The static C-element specification used in Section 5.

    Inputs ``a`` and ``b``; output ``c``.  The output rises after both
    inputs have risen and falls after both have fallen.
    """
    builder = StgBuilder(name)
    builder.inputs("a", "b")
    builder.output("c")
    builder.arc("a+", "c+")
    builder.arc("b+", "c+")
    builder.arc("c+", "a-")
    builder.arc("c+", "b-")
    builder.arc("a-", "c-")
    builder.arc("b-", "c-")
    builder.arc("c-", "a+", marked=True)
    builder.arc("c-", "b+", marked=True)
    return builder.build()


def pipeline_latch_controller(name: str = "latch_ctrl") -> SignalTransitionGraph:
    """A four-phase pipeline latch controller.

    Signals: ``rin``/``aout`` towards the producer, ``rout``/``ain`` towards
    the consumer, and latch enable ``lt``.
    """
    builder = StgBuilder(name)
    builder.inputs("rin", "ain")
    builder.outputs("aout", "rout", "lt")

    builder.arc("rin+", "lt+")
    builder.arc("lt+", "aout+")
    builder.arc("aout+", "rin-")
    builder.arc("lt+", "rout+")
    builder.arc("rout+", "ain+")
    builder.arc("ain+", "rout-")
    builder.arc("rout-", "ain-")
    builder.arc("ain-", "rout+", marked=True)
    builder.arc("rin-", "lt-")
    builder.arc("ain+", "lt-")
    builder.arc("lt-", "aout-")
    builder.arc("aout-", "rin+", marked=True)
    return builder.build()


def toggle(name: str = "toggle") -> SignalTransitionGraph:
    """A toggle element: alternates two outputs on successive input events."""
    builder = StgBuilder(name)
    builder.input("t")
    builder.outputs("q0", "q1")
    builder.arc("t+", "q0+", target_key="q0+")
    builder.arc("q0+", "t-", source_key="q0+", target_key="t-/1")
    builder.arc("t-", "q0-", source_key="t-/1", target_key="q0-")
    builder.arc("q0-", "t+", source_key="q0-", target_key="t+/2")
    builder.arc("t+", "q1+", source_key="t+/2", target_key="q1+")
    builder.arc("q1+", "t-", source_key="q1+", target_key="t-/2")
    builder.arc("t-", "q1-", source_key="t-/2", target_key="q1-")
    builder.arc("q1-", "t+", source_key="q1-", marked=True)
    return builder.build()


def call_element(name: str = "call") -> SignalTransitionGraph:
    """A call element serialising two clients onto one shared resource.

    Clients issue ``r1``/``r2`` and receive ``a1``/``a2``; the shared
    resource handshake is ``r``/``a``.  The clients are mutually exclusive
    by construction of the environment (no arbitration needed).
    """
    builder = StgBuilder(name)
    builder.inputs("r1", "r2", "a")
    builder.outputs("a1", "a2", "r")

    # Client 1 cycle.
    builder.arc("r1+", "r+", target_key="r+/1")
    builder.arc("r+", "a+", source_key="r+/1", target_key="a+/1")
    builder.arc("a+", "a1+", source_key="a+/1")
    builder.arc("a1+", "r1-")
    builder.arc("r1-", "r-", target_key="r-/1")
    builder.arc("r-", "a-", source_key="r-/1", target_key="a-/1")
    builder.arc("a-", "a1-", source_key="a-/1")
    builder.arc("a1-", "r1+", marked=True)

    # Client 2 cycle.
    builder.arc("r2+", "r+", target_key="r+/2")
    builder.arc("r+", "a+", source_key="r+/2", target_key="a+/2")
    builder.arc("a+", "a2+", source_key="a+/2")
    builder.arc("a2+", "r2-")
    builder.arc("r2-", "r-", target_key="r-/2")
    builder.arc("r-", "a-", source_key="r-/2", target_key="a-/2")
    builder.arc("a-", "a2-", source_key="a-/2")
    builder.arc("a2-", "r2+", marked=True)

    # Mutual exclusion of the two clients (environment guarantee): only one
    # client cycle may be in progress at a time.
    builder.build().add_place("mutex")
    stg = builder.build()
    stg.add_arc("mutex", "r1+")
    stg.add_arc("a1-", "mutex")
    stg.add_arc("mutex", "r2+")
    stg.add_arc("a2-", "mutex")
    marking = stg.net.initial_marking.as_dict()
    marking["mutex"] = 1
    stg.set_initial_marking(marking)
    return stg


def fifo_ring_environment(name: str = "fifo_ring") -> SignalTransitionGraph:
    """FIFO cell embedded in a ring with a single token (Section 4.2).

    The ring environment guarantees that the right handshake always completes
    before a new left handshake begins, which is exactly the user-defined
    relative-timing assumption ``ri- before li+`` of Figure 6.  This spec
    encodes that guarantee structurally so it can be used to *validate* the
    user assumption against an environment model.
    """
    stg = fifo_controller(name)
    # Add the environment guarantee as an explicit causal arc ri- -> li+.
    place = stg.add_place("p_ring_guarantee")
    stg.add_arc("ri-", place)
    stg.add_arc(place, "li+")
    marking = stg.net.initial_marking.as_dict()
    marking[place] = 1
    stg.set_initial_marking(marking)
    return stg


def _handshake_cycle(builder: StgBuilder, req: str, ack: str) -> None:
    """Four-phase handshake cycle ``req+ -> ack+ -> req- -> ack-`` (marked back)."""
    builder.arc(f"{req}+", f"{ack}+")
    builder.arc(f"{ack}+", f"{req}-")
    builder.arc(f"{req}-", f"{ack}-")
    builder.arc(f"{ack}-", f"{req}+", marked=True)


def _couple_stages(builder: StgBuilder, ack: str, req: str, eps_key: str) -> None:
    """FIFO-cell coupling between adjacent handshakes (Figure 3's epsilon).

    Data acknowledged on the upstream handshake triggers the downstream
    request, and the upstream acknowledge is held until that request has
    been issued, so each byte latch hands its value safely forward.
    """
    eps = builder.silent(eps_key)
    builder.arc(f"{ack}+", eps)
    builder.arc(eps, f"{req}+")
    builder.arc(f"{req}+", f"{ack}-")


def rappid_column_controller(
    n_bytes: int = 2, name: str = "rappid_column"
) -> SignalTransitionGraph:
    """One column of the RAPPID length-decode array, as a single controller.

    A chain of ``n_bytes`` FIFO-cell stages (the byte latches of one
    decode column) between the dispatcher handshake ``li``/``lo`` and the
    crossbar port ``xr``/``xa``; interior stage handshakes ``r<k>``/
    ``a<k>`` are internal signals.  ``n_bytes=1`` is exactly
    :func:`fifo_controller` with RAPPID port names, so the synthesis and
    conformance flows that handle the FIFO cell scale along this family.
    """
    if n_bytes < 1:
        raise ValueError("a decode column needs at least one byte stage")
    builder = StgBuilder(name)
    builder.inputs("li", "xa")
    builder.outputs("lo", "xr")
    # Handshake k runs between stage k-1 and stage k; handshake 0 is the
    # dispatcher side, handshake n_bytes the crossbar side.
    reqs = ["li"] + [f"r{k}" for k in range(1, n_bytes)] + ["xr"]
    acks = ["lo"] + [f"a{k}" for k in range(1, n_bytes)] + ["xa"]
    for k in range(1, n_bytes):
        builder.internal(reqs[k])
        builder.internal(acks[k])
    for req, ack in zip(reqs, acks):
        _handshake_cycle(builder, req, ack)
    for k in range(n_bytes):
        _couple_stages(builder, acks[k], reqs[k + 1], f"eps{k}")
    return builder.build()


def rappid_control(
    n_bytes: int = 1, n_columns: int = 2, name: str = "rappid_control"
) -> SignalTransitionGraph:
    """The multi-column RAPPID length-decode + crossbar control.

    The paper's decoder dispatches an instruction-cache line to
    ``n_columns`` decode columns, each rippling a byte-latch token through
    ``n_bytes`` FIFO-cell stages before handing its decoded length to the
    crossbar.  This spec is the control skeleton of that array as one flat
    STG (a marked graph -- forks and joins, no choice):

    * dispatcher handshake ``go``/``gack`` (environment issues ``go``);
    * ``gack+`` forks a request into every column (and is not released
      until each column has accepted it -- the join back into ``gack-``);
    * column ``c`` is a chain of ``n_bytes`` stage handshakes
      ``r<c>_<k>``/``a<c>_<k>`` (internal), FIFO-cell coupled;
    * each column terminates in its crossbar port ``xr<c>``/``xa<c>``.

    Columns run fully concurrently, so the full marking graph grows as
    (states per column)**``n_columns`` -- the state-explosion wall.  The
    stubborn-set reduced exploration collapses this to roughly the sum of
    the column lengths, which is what makes the paper-scale instance
    (16 bytes x 4 columns) checkable; see ``docs/reachability.md``.
    """
    if n_bytes < 1 or n_columns < 1:
        raise ValueError("need at least one byte stage and one column")
    builder = StgBuilder(name)
    builder.input("go")
    builder.output("gack")
    _handshake_cycle(builder, "go", "gack")
    for c in range(n_columns):
        builder.input(f"xa{c}")
        builder.output(f"xr{c}")
        reqs = [f"r{c}_{k}" for k in range(n_bytes)] + [f"xr{c}"]
        acks = [f"a{c}_{k}" for k in range(n_bytes)] + [f"xa{c}"]
        for k in range(n_bytes):
            builder.internal(reqs[k])
            builder.internal(acks[k])
        for req, ack in zip(reqs, acks):
            _handshake_cycle(builder, req, ack)
        # Fork: the dispatcher acknowledge issues the column's first
        # stage request; the join holds gack high until every column has
        # handed its decoded length to the crossbar (one line in flight).
        _couple_stages(builder, "gack", reqs[0], f"eps_fork{c}")
        builder.arc(f"xa{c}+", "gack-")
        for k in range(n_bytes):
            _couple_stages(builder, acks[k], reqs[k + 1], f"eps{c}_{k}")
    return builder.build()


ALL_SPECS = {
    "handshake": simple_handshake,
    "fifo": fifo_controller,
    "fifo_decoupled": fifo_controller_decoupled,
    "fifo_ring": fifo_ring_environment,
    "celement": celement,
    "latch_ctrl": pipeline_latch_controller,
    "toggle": toggle,
    "call": call_element,
    "rappid_column": rappid_column_controller,
    "rappid_control": rappid_control,
}


def load_spec(name: str) -> SignalTransitionGraph:
    """Instantiate a named specification from the library."""
    try:
        factory = ALL_SPECS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown spec {name!r}; available: {sorted(ALL_SPECS)}"
        ) from exc
    return factory()
