"""Fluent builder for STGs.

Marked-graph style specifications (every place has one producer and one
consumer) cover all STGs used in the paper; the builder therefore offers a
compact way to declare signals and causal arcs between signal transitions,
inserting the implicit places automatically.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.stg.model import SignalTransition, SignalTransitionGraph, StgError

EventLike = Union[str, SignalTransition]


def _as_transition(event: EventLike) -> Optional[SignalTransition]:
    """Accept ``"a+"`` strings, SignalTransition objects, or None/"eps"."""
    if event is None:
        return None
    if isinstance(event, SignalTransition):
        return event
    if event in ("eps", "epsilon", "~"):
        return None
    return SignalTransition.parse(event)


class StgBuilder:
    """Incrementally construct a :class:`SignalTransitionGraph`.

    Example (a two-signal handshake)::

        builder = StgBuilder("handshake")
        builder.input("req")
        builder.output("ack")
        builder.arc("req+", "ack+")
        builder.arc("ack+", "req-")
        builder.arc("req-", "ack-")
        builder.arc("ack-", "req+", marked=True)
        stg = builder.build()
    """

    def __init__(self, name: str = "stg") -> None:
        self._stg = SignalTransitionGraph(name)
        # map from event string to net transition name
        self._event_nodes: Dict[str, str] = {}
        self._silent_count = 0

    # -- signal declarations ------------------------------------------------------
    def input(self, name: str, initial: int = 0) -> "StgBuilder":
        self._stg.declare_input(name, initial)
        return self

    def output(self, name: str, initial: int = 0) -> "StgBuilder":
        self._stg.declare_output(name, initial)
        return self

    def internal(self, name: str, initial: int = 0) -> "StgBuilder":
        self._stg.declare_internal(name, initial)
        return self

    def inputs(self, *names: str) -> "StgBuilder":
        for name in names:
            self.input(name)
        return self

    def outputs(self, *names: str) -> "StgBuilder":
        for name in names:
            self.output(name)
        return self

    # -- events --------------------------------------------------------------------
    def event(self, event: EventLike, key: Optional[str] = None) -> str:
        """Ensure a transition node exists for ``event`` and return its name.

        ``key`` allows distinct occurrences of the same transition label,
        e.g. ``event("a+", key="a+/1")``.
        """
        # A bare string naming an already-created node (e.g. the key returned
        # by :meth:`silent`) refers to that node rather than a new one.
        if key is None and isinstance(event, str) and event in self._event_nodes:
            return self._event_nodes[event]
        label = _as_transition(event)
        if key is None:
            if label is None:
                self._silent_count += 1
                key = f"eps_{self._silent_count}"
            else:
                key = str(label)
        if key not in self._event_nodes:
            name = self._stg.add_transition(label, name=key)
            self._event_nodes[key] = name
        return self._event_nodes[key]

    def silent(self, key: Optional[str] = None) -> str:
        """Add (or fetch) a silent transition."""
        return self.event(None, key=key)

    # -- arcs ------------------------------------------------------------------------
    def arc(
        self,
        source: EventLike,
        target: EventLike,
        marked: bool = False,
        source_key: Optional[str] = None,
        target_key: Optional[str] = None,
    ) -> "StgBuilder":
        """Add a causal arc (with an implicit place) between two events."""
        source_node = self.event(source, key=source_key)
        target_node = self.event(target, key=target_key)
        self._stg.connect(source_node, target_node, marked=marked)
        return self

    def arcs(self, *pairs: Tuple[EventLike, EventLike]) -> "StgBuilder":
        for source, target in pairs:
            self.arc(source, target)
        return self

    def chain(self, *events: EventLike, close: bool = False, marked_last: bool = False) -> "StgBuilder":
        """Add arcs along a chain of events; optionally close it into a cycle."""
        if len(events) < 2:
            raise StgError("chain requires at least two events")
        for source, target in zip(events, events[1:]):
            self.arc(source, target)
        if close:
            self.arc(events[-1], events[0], marked=marked_last)
        return self

    # -- initial state ----------------------------------------------------------------
    def initial_values(self, **values: int) -> "StgBuilder":
        for signal, value in values.items():
            self._stg.set_initial_value(signal, value)
        return self

    def build(self) -> SignalTransitionGraph:
        """Return the constructed STG."""
        return self._stg
