"""STG well-formedness checks.

Before synthesis, the flow checks that a specification is *implementable*:

* **Boundedness / safeness** of the underlying net.
* **Consistency**: along every firing sequence the transitions of each
  signal strictly alternate between rising and falling, and match the
  declared initial value.
* **Output persistency**: an enabled output (non-input) transition is never
  disabled by the firing of another transition; a violation means the
  implementation would exhibit a hazard even under the speed-independent
  delay model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.petrinet.net import PetriNet
from repro.petrinet.reachability import (
    ReachabilityGraph,
    UnboundedNetError,
)
from repro.stg.model import SignalKind, SignalTransitionGraph

# Both the safeness/deadlock battery and the persistency scan walk the
# same full marking graph; resolving it through the analysis manager
# means one enumeration per net -- shared between the two checks here,
# repeated validations, and the conformance spec index.
_VALIDATION_MAX_STATES = 200_000


def _full_graph(net: PetriNet) -> ReachabilityGraph:
    from repro import analysis

    return analysis.get(
        net, "reachability-full", max_states=_VALIDATION_MAX_STATES, bound=None
    )


@dataclass
class ValidationReport:
    """Result of validating an STG specification."""

    bounded: bool = True
    safe: bool = True
    consistent: bool = True
    output_persistent: bool = True
    deadlock_free: bool = True
    consistency_violations: List[str] = field(default_factory=list)
    persistency_violations: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True if the STG passed every check."""
        return (
            self.bounded
            and self.safe
            and self.consistent
            and self.output_persistent
            and self.deadlock_free
            and not self.errors
        )

    def summary(self) -> str:
        flags = [
            ("bounded", self.bounded),
            ("safe", self.safe),
            ("consistent", self.consistent),
            ("output persistent", self.output_persistent),
            ("deadlock free", self.deadlock_free),
        ]
        parts = [f"{name}: {'yes' if value else 'NO'}" for name, value in flags]
        return "; ".join(parts)


def _explore_with_values(stg: SignalTransitionGraph, max_states: int = 200_000):
    """BFS over (marking, signal vector) pairs.

    Returns (states, edges, violations) where ``states`` maps each marking to
    the set of signal vectors seen with it and ``violations`` is a list of
    consistency error strings.
    """
    net = stg.net
    initial_vector = tuple(sorted(stg.initial_state_vector().items()))
    start = (net.initial_marking, initial_vector)
    seen = {start}
    queue = [start]
    edges = []
    violations: List[str] = []

    while queue:
        marking, vector = queue.pop()
        values = dict(vector)
        for transition in net.enabled_transitions(marking):
            label = stg.label_of(transition)
            new_values = dict(values)
            if label is not None:
                current = values.get(label.signal, 0)
                expected = 0 if label.is_rising else 1
                if current != expected:
                    violations.append(
                        f"transition {label} fires while {label.signal}={current}"
                    )
                    continue
                new_values[label.signal] = 1 if label.is_rising else 0
            successor = net.fire(transition, marking)
            new_state = (successor, tuple(sorted(new_values.items())))
            edges.append(((marking, vector), transition, new_state))
            if new_state not in seen:
                if len(seen) >= max_states:
                    raise UnboundedNetError("state cap exceeded during validation")
                seen.add(new_state)
                queue.append(new_state)
    return seen, edges, violations


def check_consistency(stg: SignalTransitionGraph) -> List[str]:
    """Return a list of consistency violations (empty when consistent)."""
    _states, _edges, violations = _explore_with_values(stg)
    return violations


def check_output_persistency(stg: SignalTransitionGraph) -> List[str]:
    """Return persistency violations for output/internal signals.

    A violation is reported when a non-input signal transition is enabled in
    a state and becomes disabled after firing some other transition without
    having fired itself.
    """
    net = stg.net
    violations: List[str] = []
    seen_pairs: Set[Tuple[str, str]] = set()

    try:
        graph = _full_graph(net)
    except UnboundedNetError:
        return ["net is unbounded; persistency not checked"]

    for marking in graph.markings:
        enabled = net.enabled_transitions(marking)
        for victim in enabled:
            victim_label = stg.label_of(victim)
            if victim_label is None:
                continue
            if stg.signal_kind(victim_label.signal) is SignalKind.INPUT:
                continue
            for aggressor in enabled:
                if aggressor == victim:
                    continue
                aggressor_label = stg.label_of(aggressor)
                # Two transitions of the same signal competing is a choice,
                # not a persistency violation.
                if (
                    aggressor_label is not None
                    and victim_label is not None
                    and aggressor_label.signal == victim_label.signal
                ):
                    continue
                successor = net.fire(aggressor, marking)
                if not net.is_enabled(victim, successor):
                    key = (str(victim_label), str(aggressor_label))
                    if key not in seen_pairs:
                        seen_pairs.add(key)
                        violations.append(
                            f"{victim_label} disabled by firing "
                            f"{aggressor_label if aggressor_label else aggressor}"
                        )
    return violations


def validate_stg(stg: SignalTransitionGraph) -> ValidationReport:
    """Run the full battery of checks and return a :class:`ValidationReport`."""
    report = ValidationReport()
    net = stg.net

    if not stg.signals:
        report.errors.append("STG declares no signals")

    try:
        graph = _full_graph(net)
    except UnboundedNetError as exc:
        report.bounded = False
        report.safe = False
        report.errors.append(str(exc))
        return report

    bound = 0
    for marking in graph.markings:
        for _place, count in marking.items():
            bound = max(bound, count)
    report.safe = bound <= 1

    report.deadlock_free = not graph.deadlocks()

    try:
        report.consistency_violations = check_consistency(stg)
    except UnboundedNetError as exc:
        report.errors.append(str(exc))
        report.consistency_violations = ["unbounded during consistency check"]
    report.consistent = not report.consistency_violations

    report.persistency_violations = check_output_persistency(stg)
    report.output_persistent = not report.persistency_violations
    return report
