"""Reader and writer for the ``.g`` (astg) STG interchange format.

The ``.g`` format is the textual format used by petrify and related tools::

    .model fifo
    .inputs li ri
    .outputs lo ro
    .graph
    li+ lo+
    lo+ li-
    ...
    .marking { <lo-,li+> }
    .end

Arcs may connect transitions directly (an implicit place is inserted) or go
through explicitly named places.  Implicit places in the ``.marking`` line
are written ``<source,target>``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.stg.model import SignalTransition, SignalTransitionGraph, StgError

_TRANSITION_RE = re.compile(r"^[A-Za-z_][\w.\[\]]*[+\-~](/\d+)?$")
_DUMMY_RE = re.compile(r"^[A-Za-z_][\w.\[\]]*$")


def _is_transition_token(token: str) -> bool:
    return bool(_TRANSITION_RE.match(token))


class _GSpec:
    """Intermediate representation collected while scanning a .g file."""

    def __init__(self) -> None:
        self.name = "stg"
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.internal: List[str] = []
        self.dummies: List[str] = []
        self.arcs: List[Tuple[str, str]] = []
        self.marking_tokens: List[str] = []
        self.initial_values: Dict[str, int] = {}


def _scan(text: str) -> _GSpec:
    spec = _GSpec()
    section = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".model" or directive == ".name":
                if len(parts) > 1:
                    spec.name = parts[1]
            elif directive == ".inputs":
                spec.inputs.extend(parts[1:])
            elif directive == ".outputs":
                spec.outputs.extend(parts[1:])
            elif directive == ".internal":
                spec.internal.extend(parts[1:])
            elif directive == ".dummy":
                spec.dummies.extend(parts[1:])
            elif directive == ".graph":
                section = "graph"
            elif directive == ".marking":
                marking_text = line[len(".marking"):].strip()
                marking_text = marking_text.strip("{}").strip()
                spec.marking_tokens.extend(marking_text.split())
            elif directive == ".initial":
                # non-standard extension: ".initial a=1 b=0"
                for assignment in parts[1:]:
                    signal, value = assignment.split("=")
                    spec.initial_values[signal] = int(value)
            elif directive == ".end":
                section = None
            else:
                # silently ignore .capacity, .slowenv and other extensions
                continue
        elif section == "graph":
            tokens = line.split()
            if len(tokens) < 2:
                raise StgError(f"malformed graph line: {raw_line!r}")
            source = tokens[0]
            for target in tokens[1:]:
                spec.arcs.append((source, target))
    return spec


def parse_g(text: str) -> SignalTransitionGraph:
    """Parse ``.g`` formatted text into a :class:`SignalTransitionGraph`."""
    spec = _scan(text)
    stg = SignalTransitionGraph(spec.name)
    for signal in spec.inputs:
        stg.declare_input(signal)
    for signal in spec.outputs:
        stg.declare_output(signal)
    for signal in spec.internal:
        stg.declare_internal(signal)

    declared = set(spec.inputs) | set(spec.outputs) | set(spec.internal)
    dummies = set(spec.dummies)

    # First pass: create nodes.  A token is a transition if it parses as one
    # and its signal is declared; otherwise it is an explicit place (or dummy).
    node_kind: Dict[str, str] = {}

    def ensure_node(token: str) -> None:
        if token in node_kind:
            return
        if token in dummies or (token.rstrip("0123456789/") in dummies):
            stg.add_transition(None, name=token)
            node_kind[token] = "transition"
            return
        if _is_transition_token(token):
            label = SignalTransition.parse(token.replace("~", "-"))
            if label.signal in declared:
                stg.add_transition(label, name=token)
                node_kind[token] = "transition"
                return
        stg.add_place(token)
        node_kind[token] = "place"

    for source, target in spec.arcs:
        ensure_node(source)
        ensure_node(target)

    # Second pass: arcs.  Transition->transition arcs get implicit places.
    implicit_places: Dict[Tuple[str, str], str] = {}
    marking: Dict[str, int] = {}
    for source, target in spec.arcs:
        if node_kind[source] == "transition" and node_kind[target] == "transition":
            place = stg.connect(source, target)
            implicit_places[(source, target)] = place
        else:
            stg.add_arc(source, target)

    # Marking tokens: either explicit place names or <source,target> pairs.
    for token in spec.marking_tokens:
        token = token.strip()
        if not token:
            continue
        if token.startswith("<") and token.endswith(">"):
            source, target = token[1:-1].split(",")
            key = (source.strip(), target.strip())
            if key not in implicit_places:
                raise StgError(f"marking references unknown implicit place {token}")
            marking[implicit_places[key]] = 1
        else:
            if not stg.net.has_place(token):
                raise StgError(f"marking references unknown place {token!r}")
            marking[token] = marking.get(token, 0) + 1
    stg.set_initial_marking(marking)

    for signal, value in spec.initial_values.items():
        stg.set_initial_value(signal, value)
    return stg


def parse_g_file(path: str) -> SignalTransitionGraph:
    """Parse a ``.g`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_g(handle.read())


def write_g(stg: SignalTransitionGraph) -> str:
    """Serialise an STG back to ``.g`` text.

    Implicit places created by :meth:`SignalTransitionGraph.connect` (one
    producer and one consumer) are folded back into direct
    transition-to-transition arcs; any other place is written explicitly.
    """
    lines = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(stg.inputs))
    if stg.outputs:
        lines.append(".outputs " + " ".join(stg.outputs))
    if stg.internals:
        lines.append(".internal " + " ".join(stg.internals))
    dummies = stg.silent_transitions
    if dummies:
        lines.append(".dummy " + " ".join(dummies))
    lines.append(".graph")

    net = stg.net
    marking_tokens: List[str] = []
    initial = net.initial_marking
    for place in net.places:
        producers = net.place_preset(place.name)
        consumers = net.place_postset(place.name)
        implicit = (
            len(producers) == 1
            and len(consumers) == 1
            and place.name.startswith("p_")
        )
        if implicit:
            source, target = producers[0], consumers[0]
            lines.append(f"{source} {target}")
            if initial[place.name]:
                marking_tokens.append(f"<{source},{target}>")
        else:
            for producer in producers:
                lines.append(f"{producer} {place.name}")
            for consumer in consumers:
                lines.append(f"{place.name} {consumer}")
            if initial[place.name]:
                marking_tokens.append(place.name)

    lines.append(".marking { " + " ".join(marking_tokens) + " }")
    initial_assignments = " ".join(
        f"{signal}={stg.initial_value(signal)}" for signal in stg.signals
    )
    if initial_assignments:
        lines.append(".initial " + initial_assignments)
    lines.append(".end")
    return "\n".join(lines) + "\n"
