"""Signal Transition Graphs (STGs).

An STG is a Petri net whose transitions are labelled with rising (``a+``)
and falling (``a-``) transitions of circuit signals, plus optional silent
(epsilon) transitions.  STGs are the specification entry point of the
Relative Timing synthesis flow (Figure 2 of the paper); the FIFO controller
of Figure 3 is provided in :mod:`repro.stg.specs`.
"""

from repro.stg.model import (
    Direction,
    SignalKind,
    SignalTransition,
    SignalTransitionGraph,
    StgError,
)
from repro.stg.builder import StgBuilder
from repro.stg.parser import parse_g, parse_g_file, write_g
from repro.stg.validation import (
    ValidationReport,
    check_consistency,
    check_output_persistency,
    validate_stg,
)
from repro.stg import specs

__all__ = [
    "Direction",
    "SignalKind",
    "SignalTransition",
    "SignalTransitionGraph",
    "StgError",
    "StgBuilder",
    "parse_g",
    "parse_g_file",
    "write_g",
    "ValidationReport",
    "check_consistency",
    "check_output_persistency",
    "validate_stg",
    "specs",
]
