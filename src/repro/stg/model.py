"""STG data model.

A :class:`SignalTransitionGraph` owns a :class:`~repro.petrinet.net.PetriNet`
whose transitions carry :class:`SignalTransition` labels.  Signals are
classified as inputs (driven by the environment), outputs (driven by the
circuit) or internal (invisible state signals inserted by the encoding
step).  Silent transitions (the ``epsilon`` of Figure 3) carry no label.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.petrinet.net import Marking, PetriNet


class StgError(Exception):
    """Raised for invalid STG structure or use."""


class Direction(enum.Enum):
    """Direction of a signal transition."""

    RISE = "+"
    FALL = "-"

    @property
    def opposite(self) -> "Direction":
        return Direction.FALL if self is Direction.RISE else Direction.RISE

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class SignalKind(enum.Enum):
    """Role of a signal in the specification."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"
    DUMMY = "dummy"


@dataclass(frozen=True)
class SignalTransition:
    """A labelled event ``signal+`` or ``signal-``.

    ``index`` distinguishes multiple occurrences of the same signal
    transition within one STG (written ``a+/1``, ``a+/2`` in the ``.g``
    format).
    """

    signal: str
    direction: Direction
    index: int = 0

    @classmethod
    def parse(cls, text: str) -> "SignalTransition":
        """Parse ``a+``, ``b-/2`` style labels."""
        text = text.strip()
        index = 0
        if "/" in text:
            text, index_text = text.split("/", 1)
            index = int(index_text)
        if text.endswith("+"):
            return cls(text[:-1], Direction.RISE, index)
        if text.endswith("-"):
            return cls(text[:-1], Direction.FALL, index)
        raise StgError(f"cannot parse signal transition {text!r}")

    @property
    def is_rising(self) -> bool:
        return self.direction is Direction.RISE

    @property
    def is_falling(self) -> bool:
        return self.direction is Direction.FALL

    def base_name(self) -> str:
        """Label without the occurrence index, e.g. ``a+``."""
        return f"{self.signal}{self.direction.value}"

    def __str__(self) -> str:
        if self.index:
            return f"{self.signal}{self.direction.value}/{self.index}"
        return f"{self.signal}{self.direction.value}"


class SignalTransitionGraph:
    """An STG: a labelled, safe Petri net plus signal declarations."""

    def __init__(self, name: str = "stg") -> None:
        self.name = name
        self.net = PetriNet(name)
        self._signals: Dict[str, SignalKind] = {}
        # transition name -> SignalTransition (None for silent transitions)
        self._labels: Dict[str, Optional[SignalTransition]] = {}
        self._initial_values: Dict[str, int] = {}

    # -- signal declarations ------------------------------------------------------
    def declare_signal(self, name: str, kind: SignalKind, initial: int = 0) -> None:
        """Declare a signal with its role and initial logic value."""
        if name in self._signals:
            raise StgError(f"signal {name!r} already declared")
        if initial not in (0, 1):
            raise StgError(f"initial value of {name!r} must be 0 or 1")
        self._signals[name] = kind
        self._initial_values[name] = initial

    def declare_input(self, name: str, initial: int = 0) -> None:
        self.declare_signal(name, SignalKind.INPUT, initial)

    def declare_output(self, name: str, initial: int = 0) -> None:
        self.declare_signal(name, SignalKind.OUTPUT, initial)

    def declare_internal(self, name: str, initial: int = 0) -> None:
        self.declare_signal(name, SignalKind.INTERNAL, initial)

    @property
    def signals(self) -> List[str]:
        return list(self._signals)

    @property
    def inputs(self) -> List[str]:
        return [s for s, k in self._signals.items() if k is SignalKind.INPUT]

    @property
    def outputs(self) -> List[str]:
        return [s for s, k in self._signals.items() if k is SignalKind.OUTPUT]

    @property
    def internals(self) -> List[str]:
        return [s for s, k in self._signals.items() if k is SignalKind.INTERNAL]

    @property
    def non_input_signals(self) -> List[str]:
        """Signals the circuit must implement (outputs plus internals)."""
        return [
            s
            for s, k in self._signals.items()
            if k in (SignalKind.OUTPUT, SignalKind.INTERNAL)
        ]

    def signal_kind(self, name: str) -> SignalKind:
        try:
            return self._signals[name]
        except KeyError as exc:
            raise StgError(f"unknown signal {name!r}") from exc

    def initial_value(self, name: str) -> int:
        try:
            return self._initial_values[name]
        except KeyError as exc:
            raise StgError(f"unknown signal {name!r}") from exc

    def set_initial_value(self, name: str, value: int) -> None:
        if name not in self._signals:
            raise StgError(f"unknown signal {name!r}")
        if value not in (0, 1):
            raise StgError("initial value must be 0 or 1")
        self._initial_values[name] = value

    def initial_state_vector(self) -> Dict[str, int]:
        return dict(self._initial_values)

    # -- transitions / places -----------------------------------------------------
    def add_transition(
        self, label: Optional[SignalTransition], name: Optional[str] = None
    ) -> str:
        """Add a (possibly silent) transition; returns its net-level name."""
        if label is not None and label.signal not in self._signals:
            raise StgError(f"signal {label.signal!r} not declared")
        if name is None:
            if label is None:
                name = f"eps_{len(self._labels)}"
            else:
                name = str(label)
        self.net.add_transition(name, None if label is None else str(label))
        self._labels[name] = label
        return name

    def add_place(self, name: str) -> str:
        self.net.add_place(name)
        return name

    def add_arc(self, source: str, target: str) -> None:
        self.net.add_arc(source, target)

    def connect(self, from_transition: str, to_transition: str, place: Optional[str] = None, marked: bool = False) -> str:
        """Insert an implicit place between two transitions.

        Returns the created place name.  ``marked`` puts a token on the place
        in the initial marking.
        """
        if place is None:
            place = f"p_{from_transition}__{to_transition}"
            suffix = 0
            while self.net.has_place(place):
                suffix += 1
                place = f"p_{from_transition}__{to_transition}_{suffix}"
        self.net.add_place(place)
        self.net.add_arc(from_transition, place)
        self.net.add_arc(place, to_transition)
        if marked:
            marking = self.net.initial_marking.as_dict()
            marking[place] = 1
            self.net.set_initial_marking(marking)
        return place

    def set_initial_marking(self, marking: Dict[str, int]) -> None:
        self.net.set_initial_marking(marking)

    @property
    def initial_marking(self) -> Marking:
        return self.net.initial_marking

    def label_of(self, transition_name: str) -> Optional[SignalTransition]:
        try:
            return self._labels[transition_name]
        except KeyError as exc:
            raise StgError(f"unknown transition {transition_name!r}") from exc

    def transitions_of_signal(self, signal: str) -> List[str]:
        """Net transition names labelled with the given signal (any direction)."""
        return [
            name
            for name, label in self._labels.items()
            if label is not None and label.signal == signal
        ]

    def transitions_with_label(self, label: SignalTransition) -> List[str]:
        """Net transitions whose label matches signal and direction (any index)."""
        return [
            name
            for name, lbl in self._labels.items()
            if lbl is not None
            and lbl.signal == label.signal
            and lbl.direction == label.direction
        ]

    @property
    def transition_names(self) -> List[str]:
        return list(self._labels)

    @property
    def silent_transitions(self) -> List[str]:
        return [name for name, label in self._labels.items() if label is None]

    # -- convenience --------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "SignalTransitionGraph":
        clone = SignalTransitionGraph(name or self.name)
        clone.net = self.net.copy(name or self.name)
        clone._signals = dict(self._signals)
        clone._labels = dict(self._labels)
        clone._initial_values = dict(self._initial_values)
        return clone

    def hide_signal(self, signal: str) -> None:
        """Turn all transitions of ``signal`` into silent transitions.

        Used by the pulse-mode transformation, which removes handshake
        signals (``lo``, ``ri`` in the paper's Figure 7) after folding the
        environment into the circuit.
        """
        if signal not in self._signals:
            raise StgError(f"unknown signal {signal!r}")
        for name in self.transitions_of_signal(signal):
            self._labels[name] = None
        del self._signals[signal]
        del self._initial_values[signal]

    def relabel_transition(self, name: str, label: Optional[SignalTransition]) -> None:
        """Change the label of an existing transition.

        Used by state encoding to turn a silent (dummy) transition into a
        state-signal transition -- the classic way CSC signals are inserted
        when the specification already contains an epsilon event at the right
        spot.
        """
        if name not in self._labels:
            raise StgError(f"unknown transition {name!r}")
        if label is not None and label.signal not in self._signals:
            raise StgError(f"signal {label.signal!r} not declared")
        self._labels[name] = label

    def relabel_signal_kind(self, signal: str, kind: SignalKind) -> None:
        if signal not in self._signals:
            raise StgError(f"unknown signal {signal!r}")
        self._signals[signal] = kind

    def __repr__(self) -> str:
        return (
            f"SignalTransitionGraph(name={self.name!r}, "
            f"inputs={self.inputs}, outputs={self.outputs}, "
            f"internal={self.internals}, "
            f"transitions={len(self._labels)})"
        )
