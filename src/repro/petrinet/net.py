"""Core Petri net data structures.

A Petri net is a bipartite graph of *places* and *transitions*.  Places hold
tokens; a transition is *enabled* when every input place holds at least as
many tokens as the arc weight, and *firing* it consumes those tokens and
produces tokens on its output places.

The nets used by the Relative Timing flow are ordinary (arc weight 1) and
safe (at most one token per place), but the implementation supports weighted
arcs and arbitrary markings so that the property checks in
:mod:`repro.petrinet.properties` can detect violations rather than assume
them away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


class PetriNetError(Exception):
    """Raised for structurally invalid Petri net operations."""


@dataclass(frozen=True)
class Place:
    """A place in a Petri net.

    Attributes
    ----------
    name:
        Unique identifier of the place within its net.
    capacity:
        Optional maximum number of tokens.  ``None`` means unbounded.
    """

    name: str
    capacity: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Transition:
    """A transition in a Petri net.

    Attributes
    ----------
    name:
        Unique identifier of the transition within its net.
    label:
        Optional observable label.  STGs label transitions with signal
        transitions such as ``a+`` or ``b-``; unlabelled (silent)
        transitions use ``None``.
    """

    name: str
    label: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class Marking:
    """An immutable multiset of tokens over places.

    Markings are hashable so they can serve as nodes of a reachability
    graph.  Only places with a non-zero token count are stored.
    """

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: Optional[Mapping[str, int]] = None) -> None:
        items: Dict[str, int] = {}
        if tokens:
            for place, count in tokens.items():
                if count < 0:
                    raise PetriNetError(
                        f"negative token count {count} for place {place!r}"
                    )
                if count:
                    items[place] = count
        self._tokens: Tuple[Tuple[str, int], ...] = tuple(sorted(items.items()))
        self._hash = hash(self._tokens)

    # -- mapping-like interface -------------------------------------------------
    def __getitem__(self, place: str) -> int:
        for name, count in self._tokens:
            if name == place:
                return count
        return 0

    def get(self, place: str, default: int = 0) -> int:
        value = self[place]
        return value if value else default

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._tokens)

    def places(self) -> Iterator[str]:
        return (name for name, _ in self._tokens)

    def total_tokens(self) -> int:
        return sum(count for _, count in self._tokens)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._tokens)

    # -- comparison / hashing ---------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Marking):
            return NotImplemented
        return self._tokens == other._tokens

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{c}" for p, c in self._tokens)
        return f"Marking({{{inner}}})"

    # -- arithmetic used by the firing rule -------------------------------------
    def add(self, deltas: Mapping[str, int]) -> "Marking":
        """Return a new marking with ``deltas`` added (may be negative)."""
        tokens = dict(self._tokens)
        for place, delta in deltas.items():
            tokens[place] = tokens.get(place, 0) + delta
            if tokens[place] < 0:
                raise PetriNetError(
                    f"firing would make place {place!r} negative"
                )
        return Marking(tokens)

    def covers(self, other: "Marking") -> bool:
        """True if this marking has at least as many tokens everywhere."""
        return all(self[place] >= count for place, count in other.items())

    def strictly_covers(self, other: "Marking") -> bool:
        """True if this marking covers ``other`` and is not equal to it."""
        return self.covers(other) and self != other


@dataclass
class _Arc:
    source: str
    target: str
    weight: int = 1


class PetriNet:
    """A place/transition net with weighted arcs and an initial marking."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        # input arcs: transition -> {place: weight}
        self._inputs: Dict[str, Dict[str, int]] = {}
        # output arcs: transition -> {place: weight}
        self._outputs: Dict[str, Dict[str, int]] = {}
        self._initial_marking = Marking()
        # Bumped on every structural mutation; lets the engine cache its
        # interned encoding per net (see repro.engine.marking.NetEncoding).
        self._structure_version = 0
        # Bumped by set_initial_marking; together with the structure
        # counter it backs the per-aspect analysis fingerprints below.
        self._marking_version = 0

    # -- construction ------------------------------------------------------------
    def add_place(self, name: str, capacity: Optional[int] = None) -> Place:
        if name in self._places:
            raise PetriNetError(f"duplicate place {name!r}")
        if name in self._transitions:
            raise PetriNetError(f"name {name!r} already used by a transition")
        place = Place(name, capacity)
        self._places[name] = place
        self._structure_version += 1
        return place

    def add_transition(self, name: str, label: Optional[str] = None) -> Transition:
        if name in self._transitions:
            raise PetriNetError(f"duplicate transition {name!r}")
        if name in self._places:
            raise PetriNetError(f"name {name!r} already used by a place")
        transition = Transition(name, label)
        self._transitions[name] = transition
        self._inputs[name] = {}
        self._outputs[name] = {}
        self._structure_version += 1
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Add an arc from a place to a transition or vice versa."""
        if weight < 1:
            raise PetriNetError("arc weight must be positive")
        if source in self._places and target in self._transitions:
            self._inputs[target][source] = (
                self._inputs[target].get(source, 0) + weight
            )
        elif source in self._transitions and target in self._places:
            self._outputs[source][target] = (
                self._outputs[source].get(target, 0) + weight
            )
        else:
            raise PetriNetError(
                f"arc must connect a place and a transition: {source!r} -> {target!r}"
            )
        self._structure_version += 1

    def set_initial_marking(self, marking: Mapping[str, int]) -> None:
        for place in marking:
            if place not in self._places:
                raise PetriNetError(f"unknown place {place!r} in initial marking")
        self._initial_marking = Marking(marking)
        self._marking_version += 1

    # -- analysis fingerprints ----------------------------------------------------
    def analysis_fingerprint(self, aspect: str = "structure") -> Tuple[str, str]:
        """Content fingerprint of one aspect, for the analysis cache.

        Aspects: ``"structure"`` (places, capacities, transitions, arcs)
        and ``"marking"`` (the initial marking).  Reachability analyses
        read both; the digest is recomputed only when the matching
        mutation counter moved since the last call, mirroring
        :meth:`repro.circuit.netlist.Netlist.analysis_fingerprint`.  The
        net's name is deliberately excluded so structurally equal nets
        share cached results.
        """
        import hashlib

        cache = getattr(self, "_fingerprint_cache", None)
        if cache is None:
            cache = self._fingerprint_cache = {}
        if aspect == "structure":
            version = self._structure_version
        elif aspect == "marking":
            version = self._marking_version
        else:
            raise ValueError(f"unknown fingerprint aspect {aspect!r}")
        cached = cache.get(aspect)
        if cached is not None and cached[0] == version:
            return cached[1]
        if aspect == "marking":
            payload = repr(self._initial_marking.as_dict())
        else:
            parts = [
                repr([(p.name, p.capacity) for p in self._places.values()]),
                repr([(t.name, t.label) for t in self._transitions.values()]),
                repr(sorted((t, sorted(ins.items())) for t, ins in self._inputs.items())),
                repr(sorted((t, sorted(outs.items())) for t, outs in self._outputs.items())),
            ]
            payload = "\n".join(parts)
        digest = hashlib.sha256(payload.encode()).hexdigest()
        fingerprint = (aspect, digest)
        cache[aspect] = (version, fingerprint)
        return fingerprint

    # -- accessors ---------------------------------------------------------------
    @property
    def places(self) -> List[Place]:
        return list(self._places.values())

    @property
    def transitions(self) -> List[Transition]:
        return list(self._transitions.values())

    @property
    def initial_marking(self) -> Marking:
        return self._initial_marking

    def place(self, name: str) -> Place:
        return self._places[name]

    def transition(self, name: str) -> Transition:
        return self._transitions[name]

    def has_place(self, name: str) -> bool:
        return name in self._places

    def has_transition(self, name: str) -> bool:
        return name in self._transitions

    def preset(self, transition: str) -> Dict[str, int]:
        """Input places of a transition with their arc weights."""
        return dict(self._inputs[transition])

    def postset(self, transition: str) -> Dict[str, int]:
        """Output places of a transition with their arc weights."""
        return dict(self._outputs[transition])

    def place_preset(self, place: str) -> List[str]:
        """Transitions producing into the place."""
        return [t for t, outs in self._outputs.items() if place in outs]

    def place_postset(self, place: str) -> List[str]:
        """Transitions consuming from the place."""
        return [t for t, ins in self._inputs.items() if place in ins]

    # -- firing rule --------------------------------------------------------------
    def is_enabled(self, transition: str, marking: Marking) -> bool:
        """True if ``transition`` may fire in ``marking``."""
        if transition not in self._transitions:
            raise PetriNetError(f"unknown transition {transition!r}")
        for place, weight in self._inputs[transition].items():
            if marking[place] < weight:
                return False
        return True

    def enabled_transitions(self, marking: Marking) -> List[str]:
        """All transitions enabled in ``marking`` (deterministic order)."""
        return [t for t in self._transitions if self.is_enabled(t, marking)]

    def fire(self, transition: str, marking: Marking) -> Marking:
        """Fire ``transition`` in ``marking`` and return the successor marking."""
        if not self.is_enabled(transition, marking):
            raise PetriNetError(
                f"transition {transition!r} is not enabled in {marking!r}"
            )
        deltas: Dict[str, int] = {}
        for place, weight in self._inputs[transition].items():
            deltas[place] = deltas.get(place, 0) - weight
        for place, weight in self._outputs[transition].items():
            deltas[place] = deltas.get(place, 0) + weight
        successor = marking.add(deltas)
        for place, count in successor.items():
            capacity = self._places[place].capacity
            if capacity is not None and count > capacity:
                raise PetriNetError(
                    f"firing {transition!r} exceeds capacity of place {place!r}"
                )
        return successor

    def fire_sequence(self, sequence: Iterable[str], marking: Optional[Marking] = None) -> Marking:
        """Fire a sequence of transitions, returning the final marking."""
        current = marking if marking is not None else self._initial_marking
        for transition in sequence:
            current = self.fire(transition, current)
        return current

    # -- misc ---------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """Deep copy of the net structure and initial marking."""
        clone = PetriNet(name or self.name)
        for place in self._places.values():
            clone.add_place(place.name, place.capacity)
        for transition in self._transitions.values():
            clone.add_transition(transition.name, transition.label)
        for transition, inputs in self._inputs.items():
            for place, weight in inputs.items():
                clone.add_arc(place, transition, weight)
        for transition, outputs in self._outputs.items():
            for place, weight in outputs.items():
                clone.add_arc(transition, place, weight)
        clone.set_initial_marking(self._initial_marking.as_dict())
        return clone

    def __repr__(self) -> str:
        return (
            f"PetriNet(name={self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)})"
        )
