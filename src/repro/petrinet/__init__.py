"""Petri net substrate.

The Signal Transition Graph (STG) specifications used throughout the
Relative Timing flow are interpreted Petri nets.  This package provides the
underlying untyped Petri net machinery:

* :class:`~repro.petrinet.net.PetriNet` -- places, transitions, arcs and
  markings with the standard firing rule.
* :class:`~repro.petrinet.reachability.ReachabilityGraph` -- explicit-state
  reachability analysis used by the state-graph construction.
* :mod:`~repro.petrinet.properties` -- structural and behavioural property
  checks (boundedness, safeness, liveness, deadlock freedom).
"""

from repro.petrinet.net import Marking, PetriNet, Place, Transition
from repro.petrinet.reachability import (
    Boundedness,
    ReachabilityGraph,
    Reduction,
    ReductionError,
    TruncatedExplorationError,
    UnboundedNetError,
    build_reachability_graph,
    check_boundedness,
    explore,
)
from repro.petrinet.properties import (
    deadlock_markings,
    is_bounded,
    is_live,
    is_safe,
    max_bound,
)

__all__ = [
    "Marking",
    "PetriNet",
    "Place",
    "Transition",
    "Boundedness",
    "ReachabilityGraph",
    "Reduction",
    "ReductionError",
    "TruncatedExplorationError",
    "UnboundedNetError",
    "build_reachability_graph",
    "check_boundedness",
    "explore",
    "deadlock_markings",
    "is_bounded",
    "is_live",
    "is_safe",
    "max_bound",
]
