"""Explicit-state reachability analysis for Petri nets.

The Relative Timing synthesis flow (Figure 2 of the paper) starts with
*reachability analysis* of the specification STG.  Two exploration modes
are provided:

* **Full** breadth-first exploration of the marking graph
  (:func:`build_reachability_graph` with the default
  ``reduction=Reduction.FULL``) -- every reachable marking and every
  edge.  This is what state-based synthesis needs: CSC detection and
  state assignment in :mod:`repro.synthesis.speed_independent` must see
  every state, so that flow always requests the full graph.

* **Partial-order reduced** exploration (:func:`explore` /
  ``reduction=Reduction.DEADLOCKS``): at each marking only a *stubborn
  set* of the enabled transitions is fired -- a subset closed under
  static conflict/dependency relations precomputed once per net
  (:class:`_StubbornRelations`).  The reduced graph visits a (often
  exponentially smaller) subset of the markings while provably
  containing **exactly the same deadlock markings** as the full graph,
  which is what the property checks in :mod:`repro.petrinet.properties`
  and the large-specification verification flow actually query.
  Queries that need every marking (``max_bound``, ``is_safe``,
  ``is_live``, ``is_reversible``) refuse reduced graphs with
  :class:`ReductionError` -- see :meth:`ReachabilityGraph.require_full`.

The soundness argument for the deadlock-preserving stubborn sets, the
choice of static relations, and which callers get reduced versus full
graphs are documented in ``docs/reachability.md``.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.petrinet.net import Marking, PetriNet, PetriNetError


class UnboundedNetError(PetriNetError):
    """Raised when reachability exploration detects an unbounded net."""


class TruncatedExplorationError(PetriNetError):
    """Exploration hit its state cap without proving either verdict.

    Distinct from :class:`UnboundedNetError`: the net may be bounded but
    larger than the cap.  Raised by ``is_bounded`` when
    :func:`check_boundedness` returns :attr:`Boundedness.TRUNCATED`.
    """


class ReductionError(PetriNetError):
    """Raised when a full-graph query is asked of a reduced graph.

    A partial-order reduced graph preserves deadlock markings but not
    the full marking set, so callers that need every marking (bound
    computation, liveness, reversibility, state-graph construction)
    must build with ``reduction=Reduction.FULL``.
    """


class Reduction(str, enum.Enum):
    """Exploration mode of a reachability graph.

    ``FULL`` explores every enabled transition at every marking.
    ``DEADLOCKS`` fires only a stubborn subset per marking; the reduced
    graph contains a subset of the reachable markings but exactly the
    same deadlock markings as the full graph.
    """

    FULL = "full"
    DEADLOCKS = "deadlocks"


@dataclass
class ReachabilityGraph:
    """The marking graph of a Petri net.

    Attributes
    ----------
    net:
        The underlying Petri net.
    markings:
        All explored markings in discovery (BFS) order.
    edges:
        Mapping ``(marking, transition) -> successor marking``.
    reduction:
        The :class:`Reduction` mode the graph was built with.  Derived
        sets (deadlocks, occurrence counts, the membership set, the
        successor index) are cached on first use -- the graph is
        immutable once built, so no invalidation is needed.
    """

    net: PetriNet
    markings: List[Marking] = field(default_factory=list)
    edges: Dict[Tuple[Marking, str], Marking] = field(default_factory=dict)
    reduction: Reduction = Reduction.FULL

    @property
    def initial_marking(self) -> Marking:
        return self.net.initial_marking

    @property
    def is_reduced(self) -> bool:
        return self.reduction is not Reduction.FULL

    def require_full(self, operation: str) -> None:
        """Raise :class:`ReductionError` unless this is a full graph.

        Guards queries whose answers are only correct on the complete
        marking set; the reduced graph preserves deadlocks, not bounds
        or cyclic structure.
        """
        if self.is_reduced:
            raise ReductionError(
                f"{operation} needs the full marking graph, but this graph "
                f"was built with reduction={self.reduction.value!r}; rebuild "
                "with reduction=Reduction.FULL"
            )

    def __len__(self) -> int:
        return len(self.markings)

    def __contains__(self, marking: Marking) -> bool:
        return marking in self._marking_set()

    def _marking_set(self) -> Set[Marking]:
        cached = getattr(self, "_cached_set", None)
        if cached is None:
            cached = self._cached_set = set(self.markings)
        return cached

    def _successor_index(self) -> Dict[Marking, List[Tuple[str, Marking]]]:
        cached = getattr(self, "_cached_successors", None)
        if cached is None:
            cached = {}
            for (source, transition), target in self.edges.items():
                cached.setdefault(source, []).append((transition, target))
            self._cached_successors = cached
        return cached

    def successors(self, marking: Marking) -> Iterator[Tuple[str, Marking]]:
        """Yield ``(transition, successor)`` pairs from ``marking``."""
        yield from self._successor_index().get(marking, [])

    def enabled(self, marking: Marking) -> List[str]:
        """Transitions with an explored edge from ``marking``.

        On a reduced graph this is the fired stubborn subset, not the
        full enabled set -- use ``net.enabled_transitions`` for that.
        """
        return [t for t, _target in self._successor_index().get(marking, [])]

    def deadlocks(self) -> List[Marking]:
        """Markings with no outgoing edges (cached after first call).

        Identical between full and deadlock-reduced graphs; that
        equality is the reduction's contract and is pinned by the
        differential suite.
        """
        cached = getattr(self, "_cached_deadlocks", None)
        if cached is None:
            with_successors = {source for (source, _t) in self.edges}
            cached = self._cached_deadlocks = [
                m for m in self.markings if m not in with_successors
            ]
        return list(cached)

    def transition_occurrences(self, transition: str) -> int:
        """Number of edges labelled with ``transition`` (cached counts)."""
        cached = getattr(self, "_cached_occurrences", None)
        if cached is None:
            cached = {}
            for (_m, t) in self.edges:
                cached[t] = cached.get(t, 0) + 1
            self._cached_occurrences = cached
        return cached.get(transition, 0)


def build_reachability_graph(
    net: PetriNet,
    max_states: int = 1_000_000,
    bound: Optional[int] = None,
    reduction: Reduction = Reduction.FULL,
) -> ReachabilityGraph:
    """Explore the reachable markings of ``net``.

    With the default ``reduction=Reduction.FULL`` this is a breadth-first
    exploration of every marking on the interned integer encoding of
    :mod:`repro.engine.marking`; markings and edges come back in the same
    BFS order (and with the same error behaviour) as the retained
    :func:`_reference_build_reachability_graph`.

    With ``reduction=Reduction.DEADLOCKS`` exploration delegates to the
    stubborn-set core :func:`explore`, which fires only a sound subset
    of the enabled transitions per marking while preserving the exact
    deadlock-marking set.

    Parameters
    ----------
    net:
        The Petri net to explore.
    max_states:
        Hard cap on the number of distinct markings; exceeded caps raise
        :class:`UnboundedNetError` since the STGs in this flow are finite.
    bound:
        If given, raise :class:`UnboundedNetError` as soon as any place
        exceeds ``bound`` tokens.  The STG flow uses ``bound=1`` (safe
        nets).  Under reduction the check is one-sided: a raise is
        always a genuine violation, but a violation only reachable via
        pruned interleavings may go unreported -- bound questions need
        the full graph (see ``docs/reachability.md``).
    """
    reduction = Reduction(reduction)
    if reduction is not Reduction.FULL:
        return explore(net, max_states=max_states, bound=bound, reduction=reduction)
    from repro.engine.marking import explore_net

    codec, markings, edges = explore_net(net, max_states, bound, UnboundedNetError)
    graph = ReachabilityGraph(net=net, markings=markings)
    transition_names = codec.transition_names
    graph.edges = {
        (markings[source], transition_names[t]): markings[target]
        for source, t, target in edges
    }
    return graph


def _reference_build_reachability_graph(
    net: PetriNet,
    max_states: int = 1_000_000,
    bound: Optional[int] = None,
) -> ReachabilityGraph:
    """Pre-engine BFS over :class:`Marking` objects.

    Kept as the oracle for the differential test suite; behaviour
    (marking order, edge order, raised errors) defines what
    :func:`build_reachability_graph` must reproduce in full mode, and
    what the reduced mode of :func:`explore` must agree with on
    deadlock sets.
    """
    graph = ReachabilityGraph(net=net)
    initial = net.initial_marking
    seen: Set[Marking] = {initial}
    graph.markings.append(initial)
    queue = deque([initial])

    while queue:
        marking = queue.popleft()
        for transition in net.enabled_transitions(marking):
            successor = net.fire(transition, marking)
            if bound is not None:
                for place, count in successor.items():
                    if count > bound:
                        raise UnboundedNetError(
                            f"place {place!r} exceeds bound {bound} "
                            f"after firing {transition!r}"
                        )
            graph.edges[(marking, transition)] = successor
            if successor not in seen:
                if len(seen) >= max_states:
                    raise UnboundedNetError(
                        f"state cap of {max_states} markings exceeded; "
                        "the net is unbounded or too large"
                    )
                seen.add(successor)
                graph.markings.append(successor)
                queue.append(successor)
    return graph


# ---------------------------------------------------------------------------
# Boundedness (tri-state)
# ---------------------------------------------------------------------------


class Boundedness(str, enum.Enum):
    """Verdict of :func:`check_boundedness`."""

    BOUNDED = "bounded"
    UNBOUNDED = "unbounded"
    TRUNCATED = "truncated"


def check_boundedness(net: PetriNet, limit: int = 4096) -> Boundedness:
    """Decide boundedness with an explicit *unknown* verdict.

    BFS over count-tuple markings with a Karp--Miller-style witness: a
    new marking that strictly covers one of its BFS-tree ancestors
    proves the covering firing sequence can be repeated to pump tokens
    without bound -- ``UNBOUNDED``, regardless of ``limit``.  If the
    state cap is hit without such a witness the verdict is
    ``TRUNCATED`` (the net may be bounded but larger than ``limit``),
    never a silent "unbounded" -- that conflation was the old
    ``is_bounded`` behaviour.
    """
    from repro.engine.marking import NetEncoding

    codec = NetEncoding.for_net(net)
    consume = codec.consume
    produce = codec.produce
    capacities = codec.capacities
    check_capacity = any(c is not None for c in capacities)
    transitions = range(len(consume))

    initial = codec.encode(net.initial_marking)
    keys: List[Tuple[int, ...]] = [initial]
    parent: List[int] = [-1]
    index: Dict[Tuple[int, ...], int] = {initial: 0}
    head = 0
    while head < len(keys):
        marking = keys[head]
        source = head
        head += 1
        for t in transitions:
            enabled = True
            for slot, weight in consume[t]:
                if marking[slot] < weight:
                    enabled = False
                    break
            if not enabled:
                continue
            counts = list(marking)
            for slot, weight in consume[t]:
                counts[slot] -= weight
            for slot, weight in produce[t]:
                counts[slot] += weight
            if check_capacity:
                for slot in codec._sorted_slots:
                    capacity = capacities[slot]
                    if capacity is not None and counts[slot] > capacity:
                        raise PetriNetError(
                            f"firing {codec.transition_names[t]!r} exceeds "
                            f"capacity of place {codec.place_names[slot]!r}"
                        )
            successor = tuple(counts)
            if successor in index:
                continue
            ancestor = source
            while ancestor != -1:
                candidate = keys[ancestor]
                if candidate != successor and all(
                    successor[slot] >= candidate[slot]
                    for slot in range(len(successor))
                ):
                    return Boundedness.UNBOUNDED
                ancestor = parent[ancestor]
            if len(index) >= limit:
                return Boundedness.TRUNCATED
            index[successor] = len(keys)
            parent.append(source)
            keys.append(successor)
    return Boundedness.BOUNDED


# ---------------------------------------------------------------------------
# Partial-order reduction: stubborn sets
# ---------------------------------------------------------------------------


class _StubbornRelations:
    """Static conflict/dependency relations of a net, computed once.

    All sets are expressed over the transition indices of the net's
    :class:`~repro.engine.marking.NetEncoding` so the per-marking
    stubborn closure is pure integer work:

    ``interfere[t]``
        Transitions that can disable ``t`` or be disabled by ``t``:
        ``t'`` interferes with ``t`` iff the preset of one intersects
        the set of places the other net-decreases.  This is the D2
        closure seed -- every enabled stubborn member drags its
        interferers into the set so that transitions left outside can
        neither disable nor be disabled by the fired subset.

    ``enablers_by_slot[p]``
        Transitions with a positive net effect on place ``p`` -- the D1
        closure seed: a disabled stubborn member needs more tokens on
        some insufficient input place, and only these transitions can
        provide them.

    Cached per net keyed by its ``_structure_version`` counter, exactly
    like the engine's :class:`~repro.engine.marking.NetEncoding`.
    """

    __slots__ = ("interfere", "enablers_by_slot", "num_transitions")

    def __init__(self, codec) -> None:
        consume = codec.consume
        produce = codec.produce
        num_places = len(codec.place_names)
        count = len(codec.transition_names)
        self.num_transitions = count

        pre_mask: List[int] = []
        dec_mask: List[int] = []
        effects: List[Dict[int, int]] = []
        for t in range(count):
            effect: Dict[int, int] = {}
            pre = 0
            for slot, weight in consume[t]:
                effect[slot] = effect.get(slot, 0) - weight
                pre |= 1 << slot
            for slot, weight in produce[t]:
                effect[slot] = effect.get(slot, 0) + weight
            effects.append(effect)
            pre_mask.append(pre)
            dec = 0
            for slot, delta in effect.items():
                if delta < 0:
                    dec |= 1 << slot
            dec_mask.append(dec)

        self.interfere: List[Tuple[int, ...]] = []
        for t in range(count):
            members = [
                u
                for u in range(count)
                if u != t
                and (pre_mask[u] & dec_mask[t] or pre_mask[t] & dec_mask[u])
            ]
            self.interfere.append(tuple(members))

        enablers: List[List[int]] = [[] for _ in range(num_places)]
        for t in range(count):
            for slot, delta in effects[t].items():
                if delta > 0:
                    enablers[slot].append(t)
        self.enablers_by_slot: List[Tuple[int, ...]] = [
            tuple(ts) for ts in enablers
        ]

    @classmethod
    def for_net(cls, net: PetriNet, codec) -> "_StubbornRelations":
        version = getattr(net, "_structure_version", None)
        cached = getattr(net, "_stubborn_relations", None)
        if cached is not None and version is not None and cached[0] == version:
            return cached[1]
        relations = cls(codec)
        if version is not None:
            net._stubborn_relations = (version, relations)
        return relations


def _stubborn_subset(
    relations: _StubbornRelations,
    enabled: Sequence[int],
    enabled_set: Set[int],
    insufficient_slot,
) -> Sequence[int]:
    """A stubborn subset of ``enabled`` at the current marking.

    Tries every enabled transition as the closure seed and keeps the
    candidate whose enabled part is smallest (ties break towards the
    lowest seed index, so exploration is deterministic); a singleton is
    returned immediately.  The closure rules are the classic
    deadlock-preserving stubborn-set conditions:

    * an *enabled* member pulls in its ``interfere`` set (D2), and
    * a *disabled* member picks its first insufficient input place and
      pulls in that place's ``enablers`` (D1).
    """
    total = len(enabled)
    if total <= 1:
        return enabled
    interfere = relations.interfere
    enablers_by_slot = relations.enablers_by_slot
    best: Sequence[int] = enabled
    for seed in enabled:
        members = {seed}
        stack = [seed]
        enabled_members = 1
        while stack and enabled_members < total:
            t = stack.pop()
            if t in enabled_set:
                additions = interfere[t]
            else:
                additions = enablers_by_slot[insufficient_slot(t)]
            for u in additions:
                if u not in members:
                    members.add(u)
                    if u in enabled_set:
                        enabled_members += 1
                    stack.append(u)
        if enabled_members >= total:
            continue
        candidate = [t for t in enabled if t in members]
        if len(candidate) == 1:
            return candidate
        if len(candidate) < len(best):
            best = candidate
    return best


def explore(
    net: PetriNet,
    max_states: int = 1_000_000,
    bound: Optional[int] = None,
    reduction: Reduction = Reduction.DEADLOCKS,
) -> ReachabilityGraph:
    """Stubborn-set reduced exploration core.

    At each marking only a stubborn subset of the enabled transitions is
    fired (see :func:`_stubborn_subset`); the resulting graph explores a
    subset of the reachable markings while containing exactly the same
    deadlock markings as the full graph built by
    :func:`build_reachability_graph` /
    :func:`_reference_build_reachability_graph` -- the differential
    contract pinned by the test suite.  ``reduction=Reduction.FULL``
    simply delegates to the full builder.

    Error behaviour mirrors the full exploration one-sidedly: a raised
    ``bound`` violation or ``max_states`` cap is always genuine, but a
    violation only reachable through pruned interleavings may be
    missed; use the full graph for bound questions.
    """
    reduction = Reduction(reduction)
    if reduction is Reduction.FULL:
        return build_reachability_graph(net, max_states=max_states, bound=bound)
    from repro.engine.marking import EncodingError, NetEncoding

    codec = NetEncoding.for_net(net)
    relations = _StubbornRelations.for_net(net, codec)
    initial = net.initial_marking
    if bound == 1 and codec.bit_capable:
        try:
            initial_bits = codec.encode_bits(initial)
        except EncodingError:
            pass  # initial marking itself is unsafe: fall through
        else:
            keys, edges = _explore_reduced_bits(
                codec, relations, initial_bits, max_states
            )
            markings = [codec.decode_bits(key) for key in keys]
            return _materialise(net, codec, markings, edges, reduction)
    count_keys, edges = _explore_reduced_counts(
        codec, relations, codec.encode(initial), max_states, bound
    )
    markings = [codec.decode(key) for key in count_keys]
    return _materialise(net, codec, markings, edges, reduction)


def _materialise(
    net: PetriNet,
    codec,
    markings: List[Marking],
    edges: List[Tuple[int, int, int]],
    reduction: Reduction,
) -> ReachabilityGraph:
    graph = ReachabilityGraph(net=net, markings=markings, reduction=reduction)
    transition_names = codec.transition_names
    graph.edges = {
        (markings[source], transition_names[t]): markings[target]
        for source, t, target in edges
    }
    return graph


def _explore_reduced_bits(
    codec,
    relations: _StubbornRelations,
    initial: int,
    max_states: int,
) -> Tuple[List[int], List[Tuple[int, int, int]]]:
    """Reduced BFS over bitmask markings with an implicit ``bound=1``."""
    need_mask = codec.need_mask
    consume_mask = codec.consume_mask
    produce_mask = codec.produce_mask
    transitions = range(len(need_mask))

    keys: List[int] = [initial]
    index: Dict[int, int] = {initial: 0}
    edges: List[Tuple[int, int, int]] = []
    head = 0
    while head < len(keys):
        marking = keys[head]
        source = head
        head += 1
        enabled = [t for t in transitions if marking & need_mask[t] == need_mask[t]]
        if not enabled:
            continue

        def insufficient_slot(t: int, _marking: int = marking) -> int:
            missing = need_mask[t] & ~_marking
            return (missing & -missing).bit_length() - 1

        ample = _stubborn_subset(relations, enabled, set(enabled), insufficient_slot)
        for t in ample:
            remainder = marking & ~consume_mask[t]
            overflow = remainder & produce_mask[t]
            if overflow:
                place = codec._first_sorted_slot(overflow)
                raise UnboundedNetError(
                    f"place {place!r} exceeds bound 1 "
                    f"after firing {codec.transition_names[t]!r}"
                )
            successor = remainder | produce_mask[t]
            target = index.get(successor)
            if target is None:
                if len(index) >= max_states:
                    raise UnboundedNetError(
                        f"state cap of {max_states} markings exceeded; "
                        "the net is unbounded or too large"
                    )
                target = len(keys)
                index[successor] = target
                keys.append(successor)
            edges.append((source, t, target))
    return keys, edges


def _explore_reduced_counts(
    codec,
    relations: _StubbornRelations,
    initial: Tuple[int, ...],
    max_states: int,
    bound: Optional[int],
) -> Tuple[List[Tuple[int, ...]], List[Tuple[int, int, int]]]:
    """Reduced BFS over count-tuple markings (weighted arcs, any bound)."""
    consume = codec.consume
    produce = codec.produce
    capacities = codec.capacities
    names = codec.place_names
    transition_names = codec.transition_names
    sorted_slots = codec._sorted_slots
    transitions = range(len(consume))
    check_capacity = any(c is not None for c in capacities)

    keys: List[Tuple[int, ...]] = [initial]
    index: Dict[Tuple[int, ...], int] = {initial: 0}
    edges: List[Tuple[int, int, int]] = []
    head = 0
    while head < len(keys):
        marking = keys[head]
        source = head
        head += 1
        enabled = []
        for t in transitions:
            for slot, weight in consume[t]:
                if marking[slot] < weight:
                    break
            else:
                enabled.append(t)
        if not enabled:
            continue

        def insufficient_slot(t: int, _marking: Tuple[int, ...] = marking) -> int:
            for slot, weight in consume[t]:
                if _marking[slot] < weight:
                    return slot
            raise AssertionError("transition is enabled")  # pragma: no cover

        ample = _stubborn_subset(relations, enabled, set(enabled), insufficient_slot)
        for t in ample:
            counts = list(marking)
            for slot, weight in consume[t]:
                counts[slot] -= weight
            for slot, weight in produce[t]:
                counts[slot] += weight
            if check_capacity:
                for slot in sorted_slots:
                    capacity = capacities[slot]
                    if capacity is not None and counts[slot] > capacity:
                        raise PetriNetError(
                            f"firing {transition_names[t]!r} exceeds "
                            f"capacity of place {names[slot]!r}"
                        )
            if bound is not None:
                for slot in sorted_slots:
                    if counts[slot] > bound:
                        raise UnboundedNetError(
                            f"place {names[slot]!r} exceeds bound {bound} "
                            f"after firing {transition_names[t]!r}"
                        )
            successor = tuple(counts)
            target = index.get(successor)
            if target is None:
                if len(index) >= max_states:
                    raise UnboundedNetError(
                        f"state cap of {max_states} markings exceeded; "
                        "the net is unbounded or too large"
                    )
                target = len(keys)
                index[successor] = target
                keys.append(successor)
            edges.append((source, t, target))
    return keys, edges
