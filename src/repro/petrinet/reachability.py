"""Explicit-state reachability analysis for Petri nets.

The Relative Timing synthesis flow (Figure 2 of the paper) starts with
*reachability analysis* of the specification STG.  The underlying engine is
an ordinary breadth-first exploration of the marking graph with an optional
state cap so that unbounded nets are detected instead of exhausting memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.petrinet.net import Marking, PetriNet, PetriNetError


class UnboundedNetError(PetriNetError):
    """Raised when reachability exploration detects an unbounded net."""


@dataclass
class ReachabilityGraph:
    """The marking graph of a Petri net.

    Attributes
    ----------
    net:
        The underlying Petri net.
    markings:
        All reachable markings in discovery (BFS) order.
    edges:
        Mapping ``(marking, transition) -> successor marking``.
    """

    net: PetriNet
    markings: List[Marking] = field(default_factory=list)
    edges: Dict[Tuple[Marking, str], Marking] = field(default_factory=dict)

    @property
    def initial_marking(self) -> Marking:
        return self.net.initial_marking

    def __len__(self) -> int:
        return len(self.markings)

    def __contains__(self, marking: Marking) -> bool:
        return marking in self._marking_set()

    def _marking_set(self) -> Set[Marking]:
        if not hasattr(self, "_cached_set") or len(self._cached_set) != len(self.markings):
            self._cached_set: Set[Marking] = set(self.markings)
        return self._cached_set

    def successors(self, marking: Marking) -> Iterator[Tuple[str, Marking]]:
        """Yield ``(transition, successor)`` pairs from ``marking``."""
        for (source, transition), target in self.edges.items():
            if source == marking:
                yield transition, target

    def enabled(self, marking: Marking) -> List[str]:
        """Transitions enabled in ``marking`` according to the explored graph."""
        return [t for (m, t) in self.edges if m == marking]

    def deadlocks(self) -> List[Marking]:
        """Markings with no outgoing edges."""
        with_successors = {source for (source, _t) in self.edges}
        return [m for m in self.markings if m not in with_successors]

    def transition_occurrences(self, transition: str) -> int:
        """Number of edges labelled with ``transition``."""
        return sum(1 for (_m, t) in self.edges if t == transition)


def build_reachability_graph(
    net: PetriNet,
    max_states: int = 1_000_000,
    bound: Optional[int] = None,
) -> ReachabilityGraph:
    """Explore all reachable markings of ``net`` breadth-first.

    Exploration runs on the interned integer encoding of
    :mod:`repro.engine.marking`; markings and edges come back in the same
    BFS order (and with the same error behaviour) as the retained
    :func:`_reference_build_reachability_graph`.

    Parameters
    ----------
    net:
        The Petri net to explore.
    max_states:
        Hard cap on the number of distinct markings; exceeded caps raise
        :class:`UnboundedNetError` since the STGs in this flow are finite.
    bound:
        If given, raise :class:`UnboundedNetError` as soon as any place
        exceeds ``bound`` tokens.  The STG flow uses ``bound=1`` (safe nets).
    """
    from repro.engine.marking import explore_net

    codec, markings, edges = explore_net(net, max_states, bound, UnboundedNetError)
    graph = ReachabilityGraph(net=net, markings=markings)
    transition_names = codec.transition_names
    graph.edges = {
        (markings[source], transition_names[t]): markings[target]
        for source, t, target in edges
    }
    return graph


def _reference_build_reachability_graph(
    net: PetriNet,
    max_states: int = 1_000_000,
    bound: Optional[int] = None,
) -> ReachabilityGraph:
    """Pre-engine BFS over :class:`Marking` objects.

    Kept as the oracle for the differential test suite; behaviour
    (marking order, edge order, raised errors) defines what
    :func:`build_reachability_graph` must reproduce.
    """
    graph = ReachabilityGraph(net=net)
    initial = net.initial_marking
    seen: Set[Marking] = {initial}
    graph.markings.append(initial)
    queue = deque([initial])

    while queue:
        marking = queue.popleft()
        for transition in net.enabled_transitions(marking):
            successor = net.fire(transition, marking)
            if bound is not None:
                for place, count in successor.items():
                    if count > bound:
                        raise UnboundedNetError(
                            f"place {place!r} exceeds bound {bound} "
                            f"after firing {transition!r}"
                        )
            graph.edges[(marking, transition)] = successor
            if successor not in seen:
                if len(seen) >= max_states:
                    raise UnboundedNetError(
                        f"state cap of {max_states} markings exceeded; "
                        "the net is unbounded or too large"
                    )
                seen.add(successor)
                graph.markings.append(successor)
                queue.append(successor)
    return graph
