"""Behavioural property checks on Petri nets.

STG-based synthesis requires the underlying net to be *safe* (1-bounded) and
live; deadlocks in the specification translate into controllers that hang.
These checks run on the explicit reachability graph, which is adequate for
the controller-sized specifications handled by the flow.
"""

from __future__ import annotations

from typing import List, Optional

from repro.petrinet.net import Marking, PetriNet
from repro.petrinet.reachability import (
    ReachabilityGraph,
    UnboundedNetError,
    build_reachability_graph,
)


def _graph(net: PetriNet, graph: Optional[ReachabilityGraph]) -> ReachabilityGraph:
    return graph if graph is not None else build_reachability_graph(net)


def max_bound(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> int:
    """Maximum token count observed on any place over all reachable markings."""
    graph = _graph(net, graph)
    bound = 0
    for marking in graph.markings:
        for _place, count in marking.items():
            bound = max(bound, count)
    return bound


def is_bounded(net: PetriNet, limit: int = 4096) -> bool:
    """True if exploration completes within ``limit`` markings."""
    try:
        build_reachability_graph(net, max_states=limit)
    except UnboundedNetError:
        return False
    return True


def is_safe(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> bool:
    """True if every place holds at most one token in every reachable marking."""
    try:
        return max_bound(net, graph) <= 1
    except UnboundedNetError:
        return False


def deadlock_markings(
    net: PetriNet, graph: Optional[ReachabilityGraph] = None
) -> List[Marking]:
    """Reachable markings from which no transition is enabled."""
    graph = _graph(net, graph)
    return graph.deadlocks()


def is_deadlock_free(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> bool:
    """True if no reachable marking is a deadlock."""
    return not deadlock_markings(net, graph)


def is_live(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> bool:
    """True if every transition can always eventually fire again (L4 liveness).

    Checked on the reachability graph: the graph must be a single strongly
    connected component containing every transition at least once, or more
    generally, from every reachable marking every transition must remain
    fireable in the future.  For the cyclic handshake specifications used in
    this flow this is the intended notion of liveness.
    """
    graph = _graph(net, graph)
    if not graph.markings:
        return False

    # Every transition must occur somewhere.
    occurring = {t for (_m, t) in graph.edges}
    if occurring != {t.name for t in net.transitions}:
        return False

    # From every marking, every transition must be reachable in the marking
    # graph.  We compute, per marking, the set of transitions fireable in its
    # forward closure via a reverse fixpoint: a transition t is "live from m"
    # if some path from m fires t.
    successors = {}
    for (source, transition), target in graph.edges.items():
        successors.setdefault(source, []).append((transition, target))

    for marking in graph.markings:
        reachable_transitions = set()
        stack = [marking]
        visited = {marking}
        while stack:
            current = stack.pop()
            for transition, target in successors.get(current, []):
                reachable_transitions.add(transition)
                if target not in visited:
                    visited.add(target)
                    stack.append(target)
        if reachable_transitions != occurring:
            return False
    return True


def is_reversible(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> bool:
    """True if the initial marking is reachable from every reachable marking."""
    graph = _graph(net, graph)
    initial = net.initial_marking
    successors = {}
    for (source, transition), target in graph.edges.items():
        successors.setdefault(source, []).append(target)

    for marking in graph.markings:
        if marking == initial:
            continue
        stack = [marking]
        visited = {marking}
        found = False
        while stack and not found:
            current = stack.pop()
            for target in successors.get(current, []):
                if target == initial:
                    found = True
                    break
                if target not in visited:
                    visited.add(target)
                    stack.append(target)
        if not found:
            return False
    return True
