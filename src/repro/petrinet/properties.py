"""Behavioural property checks on Petri nets.

STG-based synthesis requires the underlying net to be *safe* (1-bounded) and
live; deadlocks in the specification translate into controllers that hang.

Two graph regimes back these checks (see ``docs/reachability.md``):

* **Deadlock queries** (``deadlock_markings``, ``is_deadlock_free``) run on
  the partial-order *reduced* graph by default -- the stubborn-set
  exploration preserves the exact deadlock-marking set while visiting far
  fewer states, which is what makes the full RAPPID control specification
  checkable at all.
* **Bound/structure queries** (``max_bound``, ``is_safe``, ``is_live``,
  ``is_reversible``) need every reachable marking; they build full graphs
  and *refuse* a reduced graph passed in (:class:`ReductionError`), so a
  caller can never silently get a wrong bound from a pruned graph.

``is_bounded`` is tri-state underneath: :func:`check_boundedness` separates
a proven-unbounded net (token-pumping cover witness) from one that merely
exceeded the exploration ``limit``; the latter raises
:class:`TruncatedExplorationError` instead of being misreported as
unbounded.
"""

from __future__ import annotations

from typing import List, Optional

from repro.petrinet.net import Marking, PetriNet
from repro.petrinet.reachability import (
    Boundedness,
    ReachabilityGraph,
    Reduction,
    TruncatedExplorationError,
    UnboundedNetError,
    build_reachability_graph,
    check_boundedness,
)


def _full_graph(
    net: PetriNet, graph: Optional[ReachabilityGraph], operation: str
) -> ReachabilityGraph:
    if graph is None:
        return build_reachability_graph(net)
    graph.require_full(operation)
    return graph


def max_bound(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> int:
    """Maximum token count observed on any place over all reachable markings.

    Needs the full marking graph: a reduced exploration can prune exactly
    the interleaving that maximises some place's count.
    """
    graph = _full_graph(net, graph, "max_bound")
    bound = 0
    for marking in graph.markings:
        for _place, count in marking.items():
            bound = max(bound, count)
    return bound


def is_bounded(net: PetriNet, limit: int = 4096) -> bool:
    """True if the net is bounded, False if provably unbounded.

    Backed by the tri-state :func:`check_boundedness`: ``False`` means a
    genuine token-pumping witness was found, not merely that exploration
    gave up.  When the verdict is inconclusive (more than ``limit``
    markings without a witness) this raises
    :class:`TruncatedExplorationError` rather than guessing either way.
    """
    verdict = check_boundedness(net, limit=limit)
    if verdict is Boundedness.TRUNCATED:
        raise TruncatedExplorationError(
            f"exploration truncated at {limit} markings without an "
            "unboundedness witness; raise the limit to decide"
        )
    return verdict is Boundedness.BOUNDED


def is_safe(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> bool:
    """True if every place holds at most one token in every reachable marking."""
    try:
        return max_bound(net, graph) <= 1
    except UnboundedNetError:
        return False


def deadlock_markings(
    net: PetriNet, graph: Optional[ReachabilityGraph] = None
) -> List[Marking]:
    """Reachable markings from which no transition is enabled.

    When no graph is supplied, a stubborn-set *reduced* graph is built:
    it contains exactly the same deadlock markings as the full graph
    (the differential suite pins this) at a fraction of the states.
    Callers holding a graph of either mode can pass it in.
    """
    if graph is None:
        graph = build_reachability_graph(net, reduction=Reduction.DEADLOCKS)
    return graph.deadlocks()


def is_deadlock_free(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> bool:
    """True if no reachable marking is a deadlock."""
    return not deadlock_markings(net, graph)


def is_live(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> bool:
    """True if every transition can always eventually fire again (L4 liveness).

    Checked on the reachability graph: the graph must be a single strongly
    connected component containing every transition at least once, or more
    generally, from every reachable marking every transition must remain
    fireable in the future.  For the cyclic handshake specifications used in
    this flow this is the intended notion of liveness.  Needs the full
    graph -- a reduced one omits markings and interleavings.
    """
    graph = _full_graph(net, graph, "is_live")
    if not graph.markings:
        return False

    # Every transition must occur somewhere.
    occurring = {t for (_m, t) in graph.edges}
    if occurring != {t.name for t in net.transitions}:
        return False

    # From every marking, every transition must be reachable in the marking
    # graph.  We compute, per marking, the set of transitions fireable in its
    # forward closure via a reverse fixpoint: a transition t is "live from m"
    # if some path from m fires t.
    for marking in graph.markings:
        reachable_transitions = set()
        stack = [marking]
        visited = {marking}
        while stack:
            current = stack.pop()
            for transition, target in graph.successors(current):
                reachable_transitions.add(transition)
                if target not in visited:
                    visited.add(target)
                    stack.append(target)
        if reachable_transitions != occurring:
            return False
    return True


def is_reversible(net: PetriNet, graph: Optional[ReachabilityGraph] = None) -> bool:
    """True if the initial marking is reachable from every reachable marking.

    Needs the full graph for the same reason as :func:`is_live`.
    """
    graph = _full_graph(net, graph, "is_reversible")
    initial = net.initial_marking

    for marking in graph.markings:
        if marking == initial:
            continue
        stack = [marking]
        visited = {marking}
        found = False
        while stack and not found:
            current = stack.pop()
            for _transition, target in graph.successors(current):
                if target == initial:
                    found = True
                    break
                if target not in visited:
                    visited.add(target)
                    stack.append(target)
        if not found:
            return False
    return True
